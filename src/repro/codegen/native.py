"""Native execution tier: JIT-compile the emitted C++ and dlopen it.

Everything the reproduction measured before this module existed ran in
Python — the generated scalar functions, the NumPy lane kernels, the
interpreter.  The paper's numbers come from *compiled* specialized hash
functions, so this tier closes that gap: it takes the translation unit
from :func:`repro.codegen.cpp_backend.emit_cpp_native` (the regular
functor unit plus ``extern "C"`` scalar and batched entry points),
shells out to the system C++ compiler (``c++ -O2 -shared -fPIC``), and
loads the shared object back through :mod:`ctypes`.

Toolchain discovery (:func:`detect_toolchain`) is deliberately paranoid:

- candidates are probed in order ``$CXX``, ``c++``, ``clang++``,
  ``g++`` — first one that can compile *and run* a trivial program
  wins;
- ISA feature probes (BMI2 ``_pext_u64``, AES-NI / NEON crypto) are
  compiled as tiny executables and **executed in a subprocess**, so a
  compiler that accepts ``-mbmi2`` on a CPU without BMI2 produces a
  dead child process, not a SIGILL in the Python interpreter;
- ``-march=native`` is preferred when the probe survives it, otherwise
  explicit per-feature flags are tried, otherwise the feature is
  recorded as unavailable and plans needing it degrade.

Every degradation path — no compiler, compile error, unsupported
target/feature — raises :class:`repro.errors.NativeUnavailableError`.
Callers (the compile cache, synthesis, the dispatcher) catch it and
fall back to the NumPy batch kernels or the interpreter; the event is
counted under ``codegen.native.fallbacks`` and warned about exactly
once per process.  Nothing here is allowed to take the pipeline down.

Observability: ``codegen.native.probe`` and ``codegen.native.compile``
spans, ``codegen.native.compiles`` / ``compile_failures`` /
``unavailable`` / ``fallbacks`` counters, and a
``codegen.native.compile_ms`` latency histogram (per-plan compile cost,
typically 200–600 ms with gcc at ``-O2``).
"""

from __future__ import annotations

import ctypes
import os
import platform
import shutil
import subprocess
import tempfile
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.codegen.cpp_backend import NATIVE_SYMBOL, emit_cpp_native
from repro.core.plan import CombineOp, SynthesisPlan
from repro.errors import NativeUnavailableError, SynthesisError
from repro.obs.metrics import exponential_buckets, get_registry
from repro.obs.trace import span

try:  # Marshaling tier: vectorized pointer arrays need NumPy.
    import numpy as _numpy

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via flag in tests
    _numpy = None
    _HAVE_NUMPY = False

__all__ = [
    "NativeModule",
    "Toolchain",
    "compile_plan_native",
    "compile_shared_object",
    "detect_toolchain",
    "load_native_module",
    "native_available",
    "native_enabled",
    "native_target",
    "plan_native_features",
    "reset_native_state",
]

_COMPILE_TIMEOUT_S = 120.0
_PROBE_TIMEOUT_S = 30.0

COMPILE_MS_BUCKETS: Tuple[float, ...] = exponential_buckets(4, 2, 12)
"""Latency buckets for ``codegen.native.compile_ms`` (4 ms .. 8.2 s)."""

_BASE_FLAGS: Tuple[str, ...] = ("-O2", "-fPIC", "-std=c++17")

_PROBE_MAIN = """\
#include <cstdio>
int main() {
    std::printf("%d\\n", 40 + 2);
    return 0;
}
"""

_PROBE_PEXT = """\
#include <immintrin.h>
#include <cstdio>
int main() {
    unsigned long long packed = _pext_u64(0xf0f0ULL, 0xff00ULL);
    std::printf("%llu\\n", packed);
    return packed == 0xf0ULL ? 0 : 1;
}
"""

_PROBE_AES_X86 = """\
#include <immintrin.h>
#include <cstdio>
int main() {
    __m128i state = _mm_set_epi64x(0x1234, 0x5678);
    state = _mm_aesenc_si128(state, _mm_set_epi64x(0x9abc, 0xdef0));
    unsigned long long lane =
        (unsigned long long)_mm_extract_epi64(state, 1);
    std::printf("%llu\\n", lane);
    return 0;
}
"""

_PROBE_AES_ARM = """\
#include <arm_neon.h>
#include <cstdio>
int main() {
    uint8x16_t state = vdupq_n_u8(0x5a);
    state = vaesmcq_u8(vaeseq_u8(state, vdupq_n_u8(0)));
    uint8_t bytes[16];
    vst1q_u8(bytes, state);
    std::printf("%u\\n", (unsigned)bytes[0]);
    return 0;
}
"""


@dataclass(frozen=True)
class Toolchain:
    """A probed, known-working host C++ toolchain.

    Attributes:
        command: resolved compiler executable path.
        identity: first line of ``--version`` output — recorded in bench
            fingerprints so cross-compiler comparisons are skipped.
        flags: codegen flags every compile uses (base + arch + feature
            flags that survived their run-probes).
        features: ISA features proven *executable* on this host
            (subset of ``{"pext", "aes"}``).
        target: the :mod:`cpp_backend` target string for this host
            (``"x86"`` or ``"aarch64"``).
    """

    command: str
    identity: str
    flags: Tuple[str, ...]
    features: frozenset = field(default_factory=frozenset)
    target: str = "x86"

    def supports(self, needed: Iterable[str]) -> bool:
        return set(needed) <= self.features


class NativeModule:
    """A loaded specialized-hash shared object.

    Calling the module hashes one key through the ``extern "C"`` scalar
    entry point; :meth:`hash_many` marshals a whole batch through the
    ``<symbol>_hash_many`` entry point, paying the foreign-function
    overhead once per batch instead of once per key.

    Attributes:
        path: the ``.so`` on disk (may live in a temp dir owned by this
            object; the mapping stays valid for the object's lifetime).
        compiler: identity string of the toolchain that produced it
            (empty when loaded from a cached artifact without metadata).
        compile_ms: wall-clock compile latency in milliseconds, 0.0 for
            a disk-cache load that skipped the compiler.
    """

    def __init__(
        self,
        so_path: Path,
        symbol: str = NATIVE_SYMBOL,
        compiler: str = "",
        compile_ms: float = 0.0,
        key_length: Optional[int] = None,
        _tempdir: Optional[tempfile.TemporaryDirectory] = None,
    ):
        self.path = Path(so_path)
        self.symbol = symbol
        self.compiler = compiler
        self.compile_ms = compile_ms
        self.key_length = key_length
        self._tempdir = _tempdir  # keeps a temp build dir alive with us
        try:
            self._lib = ctypes.CDLL(str(self.path))
            scalar = getattr(self._lib, f"{symbol}_hash")
            batch = getattr(self._lib, f"{symbol}_hash_many")
            # A second binding of the same symbol (CDLL.__getitem__
            # creates a fresh function object) taking raw addresses, so
            # the packed path passes NumPy data pointers directly.
            batch_raw = self._lib[f"{symbol}_hash_many"]
        except (OSError, AttributeError, KeyError) as exc:
            raise NativeUnavailableError(
                f"cannot load native module {self.path}: {exc}"
            ) from exc
        scalar.argtypes = [ctypes.c_char_p, ctypes.c_size_t]
        scalar.restype = ctypes.c_uint64
        batch.argtypes = [
            ctypes.POINTER(ctypes.c_char_p),
            ctypes.POINTER(ctypes.c_size_t),
            ctypes.POINTER(ctypes.c_uint64),
            ctypes.c_size_t,
        ]
        batch.restype = None
        batch_raw.argtypes = [
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_size_t,
        ]
        batch_raw.restype = None
        self._scalar = scalar
        self._batch = batch
        self._batch_raw = batch_raw
        # Per-batch-size marshaling cache (last size only; callers
        # overwhelmingly re-batch at one size): the offsets and lens
        # vectors for the fixed-length path.  Only arrays that are
        # never written after construction live here — one NativeModule
        # is shared by every shard/dispatcher hashing the same plan
        # (the compile cache hands out one instance per plan), so a
        # cached *output* buffer would be a cross-thread data race.
        self._offsets_cache: Optional[tuple] = None

    def __call__(self, key) -> int:
        if isinstance(key, str):
            key = key.encode("utf-8")
        return self._scalar(key, len(key))

    def hash_many(self, keys: Sequence) -> List[int]:
        """Hash a batch through the native ``hash_many`` entry point.

        The keys are packed into one contiguous buffer (the same
        ``b"".join`` strategy as the NumPy lane kernels) and the
        pointer/length arrays the C ABI wants are computed as NumPy
        vector ops — so the per-key Python cost is the join plus the
        final ``tolist``, not a ctypes conversion per key.  Without
        NumPy a plain ctypes-array marshal keeps the tier functional.
        """
        count = len(keys)
        if count == 0:
            return []
        if not _HAVE_NUMPY:
            try:
                return self._hash_many_ctypes(keys, count)
            except TypeError:
                keys = [
                    key.encode("utf-8") if isinstance(key, str) else key
                    for key in keys
                ]
                return self._hash_many_ctypes(keys, count)
        return self._marshal_batch(keys, count).tolist()

    def hash_many_array(self, keys: Sequence):
        """Like :meth:`hash_many` but returning a NumPy uint64 array.

        Skips the ``tolist`` materialization (the single largest cost
        of the batched path — building one large ``int`` object per
        key), so numeric consumers that mod/partition/compare hashes as
        arrays get the raw native throughput.

        Raises:
            NativeUnavailableError: when NumPy is not importable.
        """
        if not _HAVE_NUMPY:
            raise NativeUnavailableError(
                "hash_many_array requires NumPy for the output array"
            )
        count = len(keys)
        if count == 0:
            return _numpy.empty(0, dtype=_numpy.uint64)
        return self._marshal_batch(keys, count)

    def _marshal_batch(self, keys: Sequence, count: int):
        """Pack, point, call: the NumPy-vectorized batched invocation."""
        try:
            buf = b"".join(keys)
        except TypeError:
            keys = [
                key.encode("utf-8") if isinstance(key, str) else key
                for key in keys
            ]
            buf = b"".join(keys)
        base = ctypes.cast(
            ctypes.c_char_p(buf), ctypes.c_void_p
        ).value
        length = self.key_length
        if length is not None and len(buf) == count * length:
            # Fixed-length fast path: pointer arithmetic replaces
            # per-key length computation entirely, and the offsets /
            # lens vectors are reused across equal-sized batches (the
            # steady-state shape of dispatcher traffic).  The pointers
            # vector is allocated fresh per call: concurrent batches
            # from different threads share this module, and a shared
            # output buffer would let one batch hash another's keys.
            cached = self._offsets_cache
            if cached is None or cached[0] != count:
                offsets = length * _numpy.arange(
                    count, dtype=_numpy.uintp
                )
                lens = _numpy.full(
                    count, length, dtype=_numpy.uintp
                )
                self._offsets_cache = (count, offsets, lens)
            else:
                _, offsets, lens = cached
            pointers = offsets + _numpy.uintp(base)
        else:
            lens = _numpy.fromiter(
                map(len, keys), dtype=_numpy.uintp, count=count
            )
            pointers = _numpy.empty(count, dtype=_numpy.uintp)
            pointers[0] = base
            _numpy.cumsum(lens[:-1], out=pointers[1:])
            pointers[1:] += base
        out = _numpy.empty(count, dtype=_numpy.uint64)
        self._batch_raw(
            pointers.ctypes.data, lens.ctypes.data, out.ctypes.data, count
        )
        # ``buf`` must stay alive through the call; the local above
        # guarantees it.
        return out

    def _hash_many_ctypes(self, keys: Sequence, count: int) -> List[int]:
        key_array = (ctypes.c_char_p * count)(*keys)
        len_array = (ctypes.c_size_t * count)(
            *[len(key) for key in keys]
        )
        out = (ctypes.c_uint64 * count)()
        self._batch(key_array, len_array, out, count)
        return list(out)

    def __repr__(self) -> str:
        return (
            f"NativeModule(path={str(self.path)!r}, "
            f"compiler={self.compiler!r})"
        )


# -- toolchain detection ----------------------------------------------------

_toolchain_lock = threading.Lock()
_toolchain_probed = False
_toolchain: Optional[Toolchain] = None
_toolchain_reason: Optional[str] = None
_fallback_warned = False


def native_target() -> Optional[str]:
    """The cpp_backend target for this host, or None if unsupported."""
    machine = platform.machine().lower()
    if machine in ("x86_64", "amd64", "x86", "i686"):
        return "x86"
    if machine in ("aarch64", "arm64"):
        return "aarch64"
    return None


def native_enabled() -> bool:
    """Whether the native tier is allowed at all (``SEPE_NATIVE`` env).

    ``SEPE_NATIVE=0`` force-disables the tier (probing included);
    anything else — including unset — leaves it on.  The dispatcher's
    ``prefer_native`` default reads the same variable.
    """
    return os.environ.get("SEPE_NATIVE", "1") != "0"


def _run(cmd: Sequence[str], timeout: float, cwd: Optional[Path] = None):
    return subprocess.run(
        list(cmd),
        cwd=str(cwd) if cwd is not None else None,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        timeout=timeout,
    )


def _probe_runs(
    command: str,
    flags: Sequence[str],
    source: str,
    work: Path,
    stem: str,
    expect: Optional[str] = None,
) -> bool:
    """Compile ``source`` as an executable with ``flags`` and run it.

    Running (not just compiling) is the point: an unsupported
    instruction kills the probe subprocess, never this interpreter.
    """
    src = work / f"{stem}.cpp"
    exe = work / f"{stem}.bin"
    src.write_text(source, encoding="utf-8")
    try:
        compiled = _run(
            [command, "-O2", *flags, str(src), "-o", str(exe)],
            _PROBE_TIMEOUT_S,
        )
        if compiled.returncode != 0:
            return False
        ran = _run([str(exe)], _PROBE_TIMEOUT_S)
    except (OSError, subprocess.SubprocessError):
        return False
    if ran.returncode != 0:
        return False
    if expect is not None:
        return ran.stdout.decode("utf-8", "replace").strip() == expect
    return True


def _compiler_identity(command: str) -> str:
    try:
        result = _run([command, "--version"], _PROBE_TIMEOUT_S)
        first = result.stdout.decode("utf-8", "replace").splitlines()
        if first:
            return first[0].strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return Path(command).name


def _candidate_compilers() -> List[str]:
    candidates: List[str] = []
    env_cxx = os.environ.get("CXX", "").strip()
    if env_cxx:
        candidates.append(env_cxx)
    candidates.extend(["c++", "clang++", "g++"])
    resolved: List[str] = []
    for candidate in candidates:
        path = shutil.which(candidate)
        if path and path not in resolved:
            resolved.append(path)
    return resolved


def _probe_toolchain() -> Tuple[Optional[Toolchain], Optional[str]]:
    target = native_target()
    if target is None:
        return None, f"unsupported machine {platform.machine()!r}"
    candidates = _candidate_compilers()
    if not candidates:
        return None, "no C++ compiler found ($CXX, c++, clang++, g++)"
    with tempfile.TemporaryDirectory(prefix="sepe-probe-") as tmp:
        work = Path(tmp)
        for command in candidates:
            if not _probe_runs(
                command, [], _PROBE_MAIN, work, "base", expect="42"
            ):
                continue
            arch_flags: List[str] = []
            if _probe_runs(
                command,
                ["-march=native"],
                _PROBE_MAIN,
                work,
                "march",
                expect="42",
            ):
                arch_flags = ["-march=native"]
            features = set()
            feature_flags: List[str] = []
            if target == "x86":
                feature_probes = [
                    ("pext", _PROBE_PEXT, ["-mbmi2"]),
                    ("aes", _PROBE_AES_X86, ["-maes", "-msse4.1"]),
                ]
            else:
                feature_probes = [
                    ("aes", _PROBE_AES_ARM, ["-march=armv8-a+crypto"]),
                ]
            for name, source, explicit in feature_probes:
                if arch_flags and _probe_runs(
                    command, arch_flags, source, work, f"{name}_arch"
                ):
                    features.add(name)
                elif _probe_runs(
                    command, explicit, source, work, f"{name}_flag"
                ):
                    features.add(name)
                    feature_flags.extend(
                        flag
                        for flag in explicit
                        if flag not in feature_flags
                    )
            flags = (*_BASE_FLAGS, *arch_flags, *feature_flags)
            return (
                Toolchain(
                    command=command,
                    identity=_compiler_identity(command),
                    flags=flags,
                    features=frozenset(features),
                    target=target,
                ),
                None,
            )
    return None, (
        "no candidate compiler passed the compile-and-run probe: "
        + ", ".join(candidates)
    )


def detect_toolchain(refresh: bool = False) -> Toolchain:
    """Probe (once) and return the host toolchain.

    Raises:
        NativeUnavailableError: when the tier is disabled via
            ``SEPE_NATIVE=0``, the machine is unsupported, or no
            candidate compiler survives the compile-and-run probe.  The
            negative result is cached too — callers retrying every plan
            do not re-shell-out (pass ``refresh=True`` to re-probe).
    """
    global _toolchain_probed, _toolchain, _toolchain_reason
    if not native_enabled():
        raise NativeUnavailableError(
            "native tier disabled via SEPE_NATIVE=0"
        )
    with _toolchain_lock:
        if refresh:
            _toolchain_probed = False
        if not _toolchain_probed:
            with span("codegen.native.probe"):
                _toolchain, _toolchain_reason = _probe_toolchain()
            _toolchain_probed = True
            if _toolchain is None:
                get_registry().counter(
                    "codegen.native.unavailable"
                ).inc()
        if _toolchain is None:
            raise NativeUnavailableError(
                _toolchain_reason or "native toolchain unavailable"
            )
        return _toolchain


def native_available() -> bool:
    """True when a working toolchain exists (probing on first call)."""
    try:
        detect_toolchain()
        return True
    except NativeUnavailableError:
        return False


def reset_native_state() -> None:
    """Forget the probed toolchain and the warn-once latch (tests)."""
    global _toolchain_probed, _toolchain, _toolchain_reason
    global _fallback_warned
    with _toolchain_lock:
        _toolchain_probed = False
        _toolchain = None
        _toolchain_reason = None
        _fallback_warned = False


def warn_native_fallback(reason: str) -> None:
    """Count a native→Python fallback; warn the first time only."""
    global _fallback_warned
    get_registry().counter("codegen.native.fallbacks").inc()
    if not _fallback_warned:
        _fallback_warned = True
        warnings.warn(
            f"native hash tier unavailable ({reason}); "
            "falling back to NumPy/interpreter execution",
            RuntimeWarning,
            stacklevel=3,
        )


# -- plan requirements ------------------------------------------------------

def plan_native_features(plan: SynthesisPlan) -> frozenset:
    """ISA features ``plan``'s emitted C++ requires on this target."""
    needed = set()
    if plan.combine is CombineOp.AESENC:
        needed.add("aes")
    full = (1 << 64) - 1
    for load in plan.loads:
        if load.mask is not None and load.mask not in (0, full):
            needed.add("pext")
    return frozenset(needed)


# -- compilation ------------------------------------------------------------

def compile_shared_object(
    source: str,
    out_path: Path,
    toolchain: Optional[Toolchain] = None,
) -> float:
    """Compile ``source`` into the shared object ``out_path``.

    Returns the wall-clock compile latency in milliseconds (also
    observed into the ``codegen.native.compile_ms`` histogram).

    Raises:
        NativeUnavailableError: on any compiler failure, with the tail
            of stderr in the message.
    """
    toolchain = toolchain if toolchain is not None else detect_toolchain()
    registry = get_registry()
    out_path = Path(out_path)
    src_path = out_path.with_suffix(".cpp")
    out_path.parent.mkdir(parents=True, exist_ok=True)
    src_path.write_text(source, encoding="utf-8")
    cmd = [
        toolchain.command,
        *toolchain.flags,
        "-shared",
        str(src_path),
        "-o",
        str(out_path),
    ]
    started = time.perf_counter()
    try:
        result = _run(cmd, _COMPILE_TIMEOUT_S)
    except (OSError, subprocess.SubprocessError) as exc:
        registry.counter("codegen.native.compile_failures").inc()
        raise NativeUnavailableError(
            f"native compile failed to launch: {exc}"
        ) from exc
    elapsed_ms = (time.perf_counter() - started) * 1e3
    if result.returncode != 0:
        registry.counter("codegen.native.compile_failures").inc()
        stderr = result.stderr.decode("utf-8", "replace").strip()
        tail = "\n".join(stderr.splitlines()[-8:])
        raise NativeUnavailableError(
            f"native compile failed (exit {result.returncode}):\n{tail}"
        )
    registry.counter("codegen.native.compiles").inc()
    registry.histogram(
        "codegen.native.compile_ms", COMPILE_MS_BUCKETS
    ).observe(elapsed_ms)
    return elapsed_ms


def load_native_module(
    so_path: Path,
    symbol: str = NATIVE_SYMBOL,
    compiler: str = "",
    compile_ms: float = 0.0,
    key_length: Optional[int] = None,
) -> NativeModule:
    """dlopen an existing shared object and bind its entry points.

    ``key_length`` enables the fixed-length batched marshaling fast
    path; pass the plan's ``key_length`` when reloading a cached ``.so``
    so warm artifacts batch as fast as freshly compiled ones.
    """
    return NativeModule(
        Path(so_path),
        symbol=symbol,
        compiler=compiler,
        compile_ms=compile_ms,
        key_length=key_length,
    )


def compile_plan_native(
    plan: SynthesisPlan,
    toolchain: Optional[Toolchain] = None,
    out_path: Optional[Path] = None,
    symbol: str = NATIVE_SYMBOL,
) -> Tuple[NativeModule, str]:
    """Emit, compile and load the native module for ``plan``.

    Returns ``(module, source)`` so callers (the compile cache) can
    persist the translation unit alongside the artifact.  When
    ``out_path`` is None the shared object lives in a private temp
    directory whose lifetime is tied to the returned module.

    Raises:
        NativeUnavailableError: no toolchain, missing ISA feature
            (e.g. an Aes plan on a host without AES instructions, or
            the Pext family on aarch64), or a compile/load failure.
    """
    toolchain = toolchain if toolchain is not None else detect_toolchain()
    needed = plan_native_features(plan)
    if not toolchain.supports(needed):
        missing = ", ".join(sorted(needed - toolchain.features))
        raise NativeUnavailableError(
            f"host toolchain lacks required ISA features: {missing}"
        )
    try:
        source = emit_cpp_native(
            plan, target=toolchain.target, symbol=symbol
        )
    except SynthesisError as exc:
        raise NativeUnavailableError(
            f"plan cannot target {toolchain.target}: {exc}"
        ) from exc
    with span(
        "codegen.native.compile",
        family=plan.family.value,
        target=toolchain.target,
    ):
        tempdir: Optional[tempfile.TemporaryDirectory] = None
        if out_path is None:
            tempdir = tempfile.TemporaryDirectory(prefix="sepe-native-")
            out_path = Path(tempdir.name) / "plan.so"
        elapsed_ms = compile_shared_object(source, out_path, toolchain)
        module = NativeModule(
            Path(out_path),
            symbol=symbol,
            compiler=toolchain.identity,
            compile_ms=elapsed_ms,
            key_length=plan.key_length,
            _tempdir=tempdir,
        )
    return module, source

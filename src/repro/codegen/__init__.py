"""Code generation backends for synthesized hash functions.

A :class:`repro.core.plan.SynthesisPlan` is lowered to a small linear IR
(:mod:`repro.codegen.ir`) and then emitted by one of two backends:

- :mod:`repro.codegen.python_backend` — generates Python source and
  compiles it with ``exec`` into a callable ``bytes -> int``.  This is the
  executable artifact benchmarks and containers use.
- :mod:`repro.codegen.cpp_backend` — generates the C++ a downstream C++
  user would drop next to ``std::unordered_map`` (the paper's actual
  output, Figure 5c/10/12), for both x86 (BMI2 ``pext`` + ``aesenc``) and
  aarch64 (no bit-extract; the Pext family is unavailable there, matching
  Section 4.4).
- :mod:`repro.codegen.native` — JIT-compiles that C++ with the system
  toolchain and loads it via ctypes, closing the Python → NumPy →
  native speed ladder (imported lazily: pure-Python callers never pay
  for the subprocess/ctypes machinery).

Two amortization layers sit alongside the backends:

- :mod:`repro.codegen.batch` — emits a batched ``hash_many(keys)``
  variant of the same lowering, removing per-key call overhead.
- :mod:`repro.codegen.cache` — a content-addressed compile cache so
  repeated synthesis of the same plan skips IR, emission, and ``exec``
  (and, for the native kind, persists and reloads the compiled ``.so``).
"""

from repro.codegen.batch import compile_plan_batch, emit_python_batch
from repro.codegen.cache import (
    CompileCache,
    get_compile_cache,
    plan_fingerprint,
)
from repro.codegen.cpp_backend import emit_cpp, emit_cpp_native
from repro.codegen.ir import IRFunction, Instr, build_ir
from repro.codegen.python_backend import compile_plan, emit_python

__all__ = [
    "CompileCache",
    "IRFunction",
    "Instr",
    "build_ir",
    "compile_plan",
    "compile_plan_batch",
    "emit_cpp",
    "emit_cpp_native",
    "emit_python",
    "emit_python_batch",
    "get_compile_cache",
    "plan_fingerprint",
]

"""A reference interpreter for the hash IR.

The Python backend compiles IR to source; this module *executes* the IR
directly.  It exists for differential testing: for any plan and key, the
interpreter and the compiled function must agree bit for bit, which
pins the backend's lowering (pext run-decomposition, shift masking,
tail loops) against an independent, dead-simple evaluator.

It is deliberately slow and obvious — one dict of registers, one
if-chain per opcode — because its value is as an oracle, not an engine.
"""

from __future__ import annotations

from typing import Dict

from repro.codegen.ir import AES_ROUND_KEY, IRFunction
from repro.isa.aes import aesenc
from repro.isa.bits import MASK64, pext, rotl64
from repro.obs.trace import span


def interpret(func: IRFunction, key: bytes) -> int:
    """Evaluate an IR function on a key.

    Raises:
        ValueError: on an unknown opcode or a function without ``ret``.
    """
    with span("codegen.interp", function=func.name):
        return _interpret(func, key)


def _interpret(func: IRFunction, key: bytes) -> int:
    registers: Dict[str, int] = {}

    def get(name) -> int:
        if isinstance(name, int):
            return name
        return registers[name]

    for instr in func.instrs:
        op, dest, args = instr.opcode, instr.dest, instr.args
        if op == "const":
            registers[dest] = args[0]
        elif op == "load64":
            offset, width = args
            registers[dest] = int.from_bytes(
                key[offset : offset + width], "little"
            )
        elif op == "pext":
            registers[dest] = pext(get(args[0]), args[1])
        elif op == "shl":
            registers[dest] = (get(args[0]) << args[1]) & MASK64
        elif op == "shr":
            registers[dest] = get(args[0]) >> args[1]
        elif op == "mul64":
            registers[dest] = (get(args[0]) * args[1]) & MASK64
        elif op == "rotl":
            registers[dest] = rotl64(get(args[0]), args[1])
        elif op == "xor":
            registers[dest] = get(args[0]) ^ get(args[1])
        elif op == "or":
            registers[dest] = get(args[0]) | get(args[1])
        elif op == "add":
            registers[dest] = (get(args[0]) + get(args[1])) & MASK64
        elif op == "aes_absorb":
            state, lo, hi = (get(a) for a in args)
            registers[dest] = aesenc(
                state ^ (lo | (hi << 64)), AES_ROUND_KEY
            )
        elif op == "aes_fold":
            value = get(args[0])
            registers[dest] = (value ^ (value >> 64)) & MASK64
        elif op == "tail_xor":
            acc = get(args[0])
            position = args[1]
            length = len(key)
            while position + 8 <= length:
                acc ^= int.from_bytes(
                    key[position : position + 8], "little"
                )
                position += 8
            if position < length:
                acc ^= int.from_bytes(key[position:length], "little")
            registers[dest] = acc
        elif op == "ret":
            return get(args[0])
        else:
            raise ValueError(f"unknown IR opcode: {op}")
    raise ValueError("IR function fell off the end without ret")

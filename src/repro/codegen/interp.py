"""A reference interpreter for the hash IR.

The Python backend compiles IR to source; this module *executes* the IR
directly.  It exists for differential testing: for any plan and key, the
interpreter and the compiled function must agree bit for bit, which
pins the backend's lowering (pext run-decomposition, shift masking,
tail loops) against an independent, dead-simple evaluator.

It is deliberately slow and obvious — one dict of registers, one
if-chain per opcode — because its value is as an oracle, not an engine.

A second entry point, :func:`interpret_profiled`, runs the same
semantics under per-instruction timing for the performance observatory
(:mod:`repro.obs.profile`): every instruction's wall/CPU cost is
attributed to its opcode via chained timestamps, so opcode self-times
sum to the loop's elapsed time by construction.  The two evaluators are
parity-pinned against each other in ``tests/obs/test_profile.py``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.codegen.ir import AES_ROUND_KEY, IRFunction
from repro.isa.aes import aesenc
from repro.isa.bits import MASK64, pext, rotl64
from repro.obs.trace import span


def interpret(func: IRFunction, key: bytes) -> int:
    """Evaluate an IR function on a key.

    Raises:
        ValueError: on an unknown opcode or a function without ``ret``.
    """
    with span("codegen.interp", function=func.name):
        return _interpret(func, key)


def interpret_registers(func: IRFunction, key: bytes):
    """Evaluate like :func:`interpret`, also exposing the registers.

    Returns ``(value, registers)`` where ``registers`` maps every
    register assigned before the return to its concrete 64-bit value.
    The dataflow soundness oracle compares this environment against the
    analyzer's abstract values register by register — the return value
    alone would let an unsound intermediate fact hide behind a sound
    final one.
    """
    registers: Dict[str, int] = {}
    return _interpret(func, key, registers), registers


def _interpret(
    func: IRFunction,
    key: bytes,
    registers: Optional[Dict[str, int]] = None,
) -> int:
    if registers is None:
        registers = {}

    def get(name) -> int:
        if isinstance(name, int):
            return name
        return registers[name]

    for instr in func.instrs:
        op, dest, args = instr.opcode, instr.dest, instr.args
        if op == "const":
            registers[dest] = args[0]
        elif op == "load64":
            offset, width = args
            registers[dest] = int.from_bytes(
                key[offset : offset + width], "little"
            )
        elif op == "pext":
            registers[dest] = pext(get(args[0]), args[1])
        elif op == "shl":
            registers[dest] = (get(args[0]) << args[1]) & MASK64
        elif op == "shr":
            registers[dest] = get(args[0]) >> args[1]
        elif op == "mul64":
            registers[dest] = (get(args[0]) * args[1]) & MASK64
        elif op == "rotl":
            registers[dest] = rotl64(get(args[0]), args[1])
        elif op == "xor":
            registers[dest] = get(args[0]) ^ get(args[1])
        elif op == "or":
            registers[dest] = get(args[0]) | get(args[1])
        elif op == "add":
            registers[dest] = (get(args[0]) + get(args[1])) & MASK64
        elif op == "aes_absorb":
            state, lo, hi = (get(a) for a in args)
            registers[dest] = aesenc(
                state ^ (lo | (hi << 64)), AES_ROUND_KEY
            )
        elif op == "aes_fold":
            value = get(args[0])
            registers[dest] = (value ^ (value >> 64)) & MASK64
        elif op == "tail_xor":
            acc = get(args[0])
            position = args[1]
            length = len(key)
            while position + 8 <= length:
                acc ^= int.from_bytes(
                    key[position : position + 8], "little"
                )
                position += 8
            if position < length:
                acc ^= int.from_bytes(key[position:length], "little")
            registers[dest] = acc
        elif op == "ret":
            return get(args[0])
        else:
            raise ValueError(f"unknown IR opcode: {op}")
    raise ValueError("IR function fell off the end without ret")


def interpret_profiled_many(
    func: IRFunction, keys, stats: Dict[str, list]
) -> tuple:
    """Evaluate an IR function on many keys under per-opcode timing.

    Semantics are identical to mapping :func:`interpret` over ``keys``;
    on top of that, every instruction's wall and per-thread CPU cost is
    accumulated into ``stats`` — a mapping ``opcode -> [count,
    wall_seconds, cpu_seconds]`` mutated in place so one dict can
    aggregate across several calls.

    Timestamps are *chained*: one ``perf_counter``/``thread_time`` pair
    is read per instruction boundary and each delta is attributed to the
    instruction that just executed.  The chain runs across keys, so
    per-key setup (register dict, loop advance) and the profiler's own
    accounting land inside the next instruction's window rather than
    escaping measurement: attributed self-times sum to the returned
    totals exactly, and only entry/exit bookkeeping (a few hundred
    nanoseconds per *corpus*, not per key) is outside them.

    Returns:
        ``(values, wall_seconds, cpu_seconds)`` — the hash values plus
        the evaluation's total elapsed wall/CPU time (entry to exit).

    Raises:
        ValueError: on an unknown opcode or a function without ``ret``.
    """
    values = []
    append = values.append
    instrs = func.instrs
    cpu_entry = cpu_prev = time.thread_time()
    wall_entry = wall_prev = time.perf_counter()
    for key in keys:
        registers: Dict[str, int] = {}

        def get(name) -> int:
            if isinstance(name, int):
                return name
            return registers[name]

        returned = False
        for instr in instrs:
            op, dest, args = instr.opcode, instr.dest, instr.args
            if op == "const":
                registers[dest] = args[0]
            elif op == "load64":
                offset, width = args
                registers[dest] = int.from_bytes(
                    key[offset : offset + width], "little"
                )
            elif op == "pext":
                registers[dest] = pext(get(args[0]), args[1])
            elif op == "shl":
                registers[dest] = (get(args[0]) << args[1]) & MASK64
            elif op == "shr":
                registers[dest] = get(args[0]) >> args[1]
            elif op == "mul64":
                registers[dest] = (get(args[0]) * args[1]) & MASK64
            elif op == "rotl":
                registers[dest] = rotl64(get(args[0]), args[1])
            elif op == "xor":
                registers[dest] = get(args[0]) ^ get(args[1])
            elif op == "or":
                registers[dest] = get(args[0]) | get(args[1])
            elif op == "add":
                registers[dest] = (get(args[0]) + get(args[1])) & MASK64
            elif op == "aes_absorb":
                state, lo, hi = (get(a) for a in args)
                registers[dest] = aesenc(
                    state ^ (lo | (hi << 64)), AES_ROUND_KEY
                )
            elif op == "aes_fold":
                value = get(args[0])
                registers[dest] = (value ^ (value >> 64)) & MASK64
            elif op == "tail_xor":
                acc = get(args[0])
                position = args[1]
                length = len(key)
                while position + 8 <= length:
                    acc ^= int.from_bytes(
                        key[position : position + 8], "little"
                    )
                    position += 8
                if position < length:
                    acc ^= int.from_bytes(key[position:length], "little")
                registers[dest] = acc
            elif op == "ret":
                append(get(args[0]))
                returned = True
            else:
                raise ValueError(f"unknown IR opcode: {op}")
            cpu_now = time.thread_time()
            wall_now = time.perf_counter()
            entry = stats.get(op)
            if entry is None:
                entry = stats[op] = [0, 0.0, 0.0]
            entry[0] += 1
            entry[1] += wall_now - wall_prev
            entry[2] += cpu_now - cpu_prev
            wall_prev = wall_now
            cpu_prev = cpu_now
            if returned:
                break
        if not returned:
            raise ValueError("IR function fell off the end without ret")
    return values, wall_prev - wall_entry, cpu_prev - cpu_entry


def interpret_profiled(
    func: IRFunction, key: bytes, stats: Dict[str, list]
) -> tuple:
    """Single-key form of :func:`interpret_profiled_many`.

    Returns:
        ``(value, wall_seconds, cpu_seconds)``.
    """
    values, wall, cpu = interpret_profiled_many(func, (key,), stats)
    return values[0], wall, cpu

"""Exception hierarchy for the repro (SEPE) library.

All library-raised exceptions derive from :class:`SepeError`, so callers can
catch one type to handle any failure originating in this package.
"""

from __future__ import annotations


class SepeError(Exception):
    """Base class for all errors raised by the repro library."""


class RegexSyntaxError(SepeError):
    """Raised when the key-format regular expression cannot be parsed.

    Attributes:
        pattern: the offending pattern text.
        position: index into ``pattern`` where parsing failed.
    """

    def __init__(self, message: str, pattern: str = "", position: int = -1):
        self.pattern = pattern
        self.position = position
        if pattern and position >= 0:
            message = f"{message} (at position {position} in {pattern!r})"
        super().__init__(message)


class UnsupportedPatternError(SepeError):
    """Raised when a parsed pattern uses features synthesis cannot handle.

    SEPE supports a regular-expression subset describing fixed-length byte
    formats (character classes, literals, bounded repetition).  Unbounded
    repetition (``*``, ``+``), alternation of different lengths, and
    backreferences fall outside that subset.
    """


class SynthesisError(SepeError):
    """Raised when code generation fails for a valid pattern.

    The canonical case is a key shorter than eight bytes: SEPE defaults to
    the standard library hash for such keys (paper, Section 4.7, footnote 5)
    and refuses to synthesize a specialized function.
    """


class VerificationError(SepeError):
    """Raised when static verification refutes a synthesized plan.

    Only ``synthesize(..., verify="strict")`` raises this; the default
    pipeline records findings without failing.  The message carries the
    error-severity lint findings (or the bijectivity refutation) that
    sank the plan.
    """


class NativeUnavailableError(SepeError):
    """Raised when the native (JIT-compiled C++) tier cannot serve a plan.

    Covers every degradation cause — no C++ compiler on the host, a
    compile error, an unsupported target/feature combination (e.g. the
    Pext family on aarch64), or a previously recorded failure for the
    same plan.  Callers are expected to catch this and fall back to the
    NumPy batch kernels or the interpreter; nothing in the default
    pipeline lets it escape to users.
    """


class EmptyKeySetError(SepeError):
    """Raised when pattern inference is given no example keys."""


class KeyFormatError(SepeError):
    """Raised when a key does not match the format a component expects."""


class PerfectSearchError(SynthesisError):
    """Raised when no certified-perfect plan exists within the budget.

    The perfect tier (:mod:`repro.perfect`) refuses rather than hand
    back an uncertified "perfect" hash: either the closed key set needs
    more than 64 distinguishing bits, the search budget ran dry before
    a collision-free mask/mixer assignment was found, or the exhaustive
    certification pass caught a collision the search missed.  The
    message carries the reasons; callers can fall back to an ordinary
    synthesized family, which is what ``sepe perfect`` suggests.
    """

"""libstdc++'s prime rehash policy.

``std::unordered_*`` in libstdc++ keeps a prime number of buckets: on
overflow it jumps to the smallest prime at least twice the current
count (``_Prime_rehash_policy::_M_next_bkt``).  Prime moduli matter for
the paper's results: with ``hash % prime`` even a low-entropy hash (e.g.
Pext's near-identity bijections) spreads keys across buckets, which is
why B-Coll stays flat across functions in Table 1 while RQ7's
MSB-indexing container falls apart.

Primality here is decided by deterministic Miller-Rabin, exact for all
64-bit integers with the standard witness set.
"""

from __future__ import annotations

_MILLER_RABIN_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
"""Deterministic witnesses for n < 3,317,044,064,679,887,385,961,981."""


def is_prime(candidate: int) -> bool:
    """Deterministic primality test, exact for 64-bit integers.

    >>> [n for n in range(20) if is_prime(n)]
    [2, 3, 5, 7, 11, 13, 17, 19]
    """
    if candidate < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if candidate % small == 0:
            return candidate == small
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in _MILLER_RABIN_WITNESSES:
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def next_prime(minimum: int) -> int:
    """The smallest prime that is at least ``minimum``.

    >>> next_prime(14)
    17
    >>> next_prime(2)
    2
    """
    candidate = max(minimum, 2)
    while not is_prime(candidate):
        candidate += 1
    return candidate


class PrimeRehashPolicy:
    """Bucket-count policy matching libstdc++'s ``_Prime_rehash_policy``.

    Attributes:
        max_load_factor: elements per bucket tolerated before growth
            (libstdc++ default 1.0).
    """

    INITIAL_BUCKETS = 13
    """libstdc++ starts at 13 buckets on the first real insertion."""

    def __init__(self, max_load_factor: float = 1.0):
        if max_load_factor <= 0:
            raise ValueError("max_load_factor must be positive")
        self.max_load_factor = max_load_factor

    def initial_bucket_count(self) -> int:
        return self.INITIAL_BUCKETS

    def needs_rehash(self, bucket_count: int, element_count: int) -> bool:
        """Grow when the next insertion would exceed the load factor."""
        return element_count + 1 > bucket_count * self.max_load_factor

    def next_bucket_count(self, bucket_count: int, element_count: int) -> int:
        """Next prime at least twice the current count and big enough for
        the pending element count."""
        required = int((element_count + 1) / self.max_load_factor) + 1
        return next_prime(max(2 * bucket_count + 1, required))

    def bucket_count_for(self, element_count: int) -> int:
        """Smallest acceptable bucket count to hold ``element_count``
        elements without a rehash (libstdc++ ``reserve`` semantics: one
        jump straight to the target prime instead of doubling there)."""
        required = int(element_count / self.max_load_factor) + 1
        return next_prime(max(required, self.INITIAL_BUCKETS))

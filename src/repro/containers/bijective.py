"""Containers specialized for bijective hashes (the paper's future work).

The conclusion of the paper: "our techniques specialize hashing, but not
storage and retrieval.  Thus, we see room for generating code for
specialized data structures."  This module builds that next step for the
strongest case SEPE produces: a **Pext bijection** (formats with at most
64 varying bits, Section 4.2).

When distinct conforming keys are *guaranteed* distinct 64-bit values,
the container never needs the key bytes:

- nodes store only ``(hash, value)`` — no key storage, and lookups
  compare one machine word instead of walking byte strings;
- erase/find never touch key memory at all.

This is the learned-index insight the paper quotes from Kraska et al.
("the key itself can be used as an offset") applied to chained tables.

Safety contract: correctness requires every key passed in to conform to
the synthesized format.  By default the constructor refuses a
non-bijective hash; ``KeyPattern.require_match`` is available for callers
who want per-operation format checking (at a cost).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Union

from repro.containers.hashing_policy import PrimeRehashPolicy
from repro.core.synthesis import SynthesizedHash
from repro.errors import SynthesisError

HashCallable = Callable[[bytes], int]


def _resolve(
    hash_function: Union[SynthesizedHash, HashCallable],
    trust_bijective: bool,
) -> HashCallable:
    if isinstance(hash_function, SynthesizedHash):
        if not hash_function.is_bijective and not trust_bijective:
            raise SynthesisError(
                "BijectiveMap requires a bijective hash; this "
                f"{hash_function.family.value} plan is not "
                "(pass trust_bijective=True to override)"
            )
        return hash_function.function
    if not trust_bijective:
        raise SynthesisError(
            "a bare callable carries no bijection evidence; pass a "
            "SynthesizedHash or trust_bijective=True"
        )
    return hash_function


class BijectiveMap:
    """A key-less hash map for bijective SEPE hashes.

    >>> from repro import synthesize, HashFamily
    >>> ssn = synthesize(r"\\d{3}-\\d{2}-\\d{4}", HashFamily.PEXT)
    >>> table = BijectiveMap(ssn)
    >>> table.insert(b"123-45-6789", "Ada")
    True
    >>> table.find(b"123-45-6789")
    'Ada'
    """

    __slots__ = ("_hash", "_policy", "_buckets", "_size")

    def __init__(
        self,
        hash_function: Union[SynthesizedHash, HashCallable],
        policy: Optional[PrimeRehashPolicy] = None,
        trust_bijective: bool = False,
    ):
        self._hash = _resolve(hash_function, trust_bijective)
        self._policy = policy or PrimeRehashPolicy()
        self._buckets: List[List[tuple]] = [
            [] for _ in range(self._policy.initial_bucket_count())
        ]
        self._size = 0

    def _bucket_of(self, hash_value: int) -> List[tuple]:
        return self._buckets[hash_value % len(self._buckets)]

    def _maybe_rehash(self) -> None:
        if self._policy.needs_rehash(len(self._buckets), self._size):
            new_count = self._policy.next_bucket_count(
                len(self._buckets), self._size
            )
            old = self._buckets
            self._buckets = [[] for _ in range(new_count)]
            for bucket in old:
                for node in bucket:
                    self._buckets[node[0] % new_count].append(node)

    def insert(self, key: bytes, value: Any = None) -> bool:
        """Insert; returns False when the key (by hash) is present."""
        hash_value = self._hash(key)
        bucket = self._bucket_of(hash_value)
        for node in bucket:
            if node[0] == hash_value:
                return False
        self._maybe_rehash()
        self._buckets[hash_value % len(self._buckets)].append(
            (hash_value, value)
        )
        self._size += 1
        return True

    def find(self, key: bytes) -> Optional[Any]:
        """The mapped value, or None.  One word-compare per probe."""
        hash_value = self._hash(key)
        for node in self._bucket_of(hash_value):
            if node[0] == hash_value:
                return node[1]
        return None

    def erase(self, key: bytes) -> int:
        hash_value = self._hash(key)
        index = hash_value % len(self._buckets)
        bucket = self._buckets[index]
        kept = [node for node in bucket if node[0] != hash_value]
        removed = len(bucket) - len(kept)
        if removed:
            self._buckets[index] = kept
            self._size -= removed
        return removed

    def __contains__(self, key: bytes) -> bool:
        return self._has_hash(self._hash(key))

    def _has_hash(self, hash_value: int) -> bool:
        return any(node[0] == hash_value for node in self._bucket_of(
            hash_value))

    def __len__(self) -> int:
        return self._size

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    def bucket_collisions(self) -> int:
        """Extra chained nodes, comparable to HashTableBase's metric."""
        return sum(
            len(bucket) - 1 for bucket in self._buckets if len(bucket) > 1
        )

    def hashes(self) -> Iterator[int]:
        """Iterate stored hash values (keys are not recoverable — by
        design the container never kept them; a Pext bijection *is*
        invertible, but inversion lives with the plan, not here)."""
        for bucket in self._buckets:
            for node in bucket:
                yield node[0]


class BijectiveSet(BijectiveMap):
    """Set variant: membership keyed purely on the bijective hash.

    >>> from repro import synthesize, HashFamily
    >>> ssn = synthesize(r"\\d{3}-\\d{2}-\\d{4}", HashFamily.PEXT)
    >>> table = BijectiveSet(ssn)
    >>> table.insert(b"123-45-6789")
    True
    >>> b"123-45-6789" in table
    True
    """

    def insert(self, key: bytes, value: Any = None) -> bool:
        return super().insert(key, None)

    def find(self, key: bytes) -> bool:  # type: ignore[override]
        hash_value = self._hash(key)
        return self._has_hash(hash_value)

"""Hash containers mimicking the C++ STL's unordered family.

The paper's B-Time and B-Coll metrics depend on container policy, not
just the hash function, so this package reimplements libstdc++'s
behaviour:

- separate chaining with node buckets;
- ``bucket = hash % bucket_count`` indexing (the property RQ7 leans on:
  modulo uses the *low* bits, so even poorly-mixed hashes spread);
- prime bucket counts, growing to the next prime at least twice the
  current count when the load factor would exceed 1.0.

Four containers mirror the STL set (``unordered_map``, ``unordered_set``,
``unordered_multimap``, ``unordered_multiset``) and
:class:`repro.containers.low_mixing.LowMixingMap` implements RQ7's
adversarial variant that indexes buckets by the *most significant* bits.
"""

from repro.containers.bijective import BijectiveMap, BijectiveSet
from repro.containers.hashing_policy import PrimeRehashPolicy, next_prime
from repro.containers.low_mixing import LowMixingMap
from repro.containers.unordered_map import UnorderedMap
from repro.containers.unordered_multimap import UnorderedMultimap
from repro.containers.unordered_multiset import UnorderedMultiset
from repro.containers.unordered_set import UnorderedSet

CONTAINER_TYPES = {
    "unordered_map": UnorderedMap,
    "unordered_set": UnorderedSet,
    "unordered_multimap": UnorderedMultimap,
    "unordered_multiset": UnorderedMultiset,
}
"""The four STL container types of the paper's benchmark driver."""

__all__ = [
    "BijectiveMap",
    "BijectiveSet",
    "CONTAINER_TYPES",
    "LowMixingMap",
    "PrimeRehashPolicy",
    "UnorderedMap",
    "UnorderedMultimap",
    "UnorderedMultiset",
    "UnorderedSet",
    "next_prime",
]

"""``std::unordered_multimap`` equivalent: duplicate keys allowed."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Tuple

from repro.containers.base import HashTableBase


class UnorderedMultimap(HashTableBase):
    """A multi-key hash map with STL bucket semantics.

    The *Multi* variants accept duplicate keys, which is why Figure 20
    shows them slower: every operation on a key may touch several nodes.

    >>> from repro.hashes import stl_hash_bytes
    >>> table = UnorderedMultimap(stl_hash_bytes)
    >>> table.insert(b"k", 1), table.insert(b"k", 2)
    (True, True)
    >>> table.count(b"k")
    2
    """

    def __init__(self, hash_function, policy=None):
        super().__init__(hash_function, policy, allow_duplicates=True)

    def insert(self, key: bytes, value: Any) -> bool:
        """Insert; always succeeds for multi containers."""
        return self._insert(key, value)

    def insert_many(self, items: Iterable[Tuple[bytes, Any]]) -> int:
        """Bulk insert with one upfront resize; every item lands."""
        return self._insert_many(items)

    def find(self, key: bytes) -> Any:
        """The first mapped value for the key, or None."""
        node = self._find(key)
        return node[2] if node is not None else None

    def find_all(self, key: bytes) -> List[Any]:
        """Every mapped value for the key (``equal_range``)."""
        hash_value = self._hash(key)
        return [
            node[2]
            for node in self._buckets[self._bucket_index(hash_value)]
            if node[0] == hash_value and node[1] == key
        ]

    def erase(self, key: bytes) -> int:
        """Remove every node with the key; returns the count removed."""
        return self._erase(key)

    def count(self, key: bytes) -> int:
        return self._count(key)

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        for _hash, key, value in self._iter_nodes():
            yield key, value

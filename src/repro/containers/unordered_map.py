"""``std::unordered_map`` equivalent: unique keys mapped to values."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Tuple

from repro.containers.base import HashTableBase


class UnorderedMap(HashTableBase):
    """A unique-key hash map with STL bucket semantics.

    >>> from repro.hashes import stl_hash_bytes
    >>> table = UnorderedMap(stl_hash_bytes)
    >>> table.insert(b"alpha", 1)
    True
    >>> table.insert(b"alpha", 2)   # duplicate key rejected, like STL insert
    False
    >>> table.find(b"alpha")
    1
    """

    def __init__(
        self, hash_function, policy=None, telemetry=None, perfect=False
    ):
        """``perfect=True`` engages the certified no-collision fast path
        (lookups skip the key equality probe); requires a
        :class:`~repro.perfect.PerfectHash` and lookups confined to its
        certified closed key set."""
        super().__init__(
            hash_function,
            policy,
            allow_duplicates=False,
            telemetry=telemetry,
            assume_perfect=perfect,
        )

    def insert(self, key: bytes, value: Any) -> bool:
        """Insert; returns False if the key already exists (STL insert)."""
        return self._insert(key, value)

    def insert_many(self, items: Iterable[Tuple[bytes, Any]]) -> int:
        """Bulk insert with one upfront resize; returns the count
        actually inserted (existing keys are skipped, like ``insert``)."""
        return self._insert_many(items)

    def update(self, items: Iterable[Tuple[bytes, Any]]) -> None:
        """Bulk ``operator[]``: insert-or-overwrite every pair, after a
        single upfront reservation for the incoming batch."""
        items = list(items)
        self.reserve(len(self) + len(items))
        for key, value in items:
            self.assign(key, value)

    def assign(self, key: bytes, value: Any) -> None:
        """``operator[]`` semantics: insert or overwrite."""
        self._erase(key)
        self._insert(key, value)

    def find(self, key: bytes) -> Optional[Any]:
        """The mapped value, or None when absent."""
        node = self._find(key)
        return node[2] if node is not None else None

    def erase(self, key: bytes) -> int:
        """Remove the key; returns 0 or 1."""
        return self._erase(key)

    def count(self, key: bytes) -> int:
        """0 or 1, like STL ``count`` on unique-key containers."""
        return self._count(key)

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        """Iterate (key, value) pairs in bucket order."""
        for _hash, key, value in self._iter_nodes():
            yield key, value

    def keys(self) -> Iterator[bytes]:
        """Iterate stored keys in bucket order."""
        for _hash, key, _value in self._iter_nodes():
            yield key

    def values(self) -> Iterator[Any]:
        """Iterate mapped values in bucket order."""
        for _hash, _key, value in self._iter_nodes():
            yield value

    def clear(self) -> None:
        """Remove every entry (STL ``clear``)."""
        self._clear()

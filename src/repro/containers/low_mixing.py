"""The low-mixing container of RQ7 (Section 4.7).

The paper defines a *low-mixing container* as one whose bucket indexing
uses only part of the hash value.  The variant evaluated in Figures 17
and 18 indexes buckets by ``u % B`` where ``u`` is the hash with its
``X`` least-significant bits discarded — with ``X = 48``, every hash in
``[0, 2^48)`` lands in bucket 0.

SEPE's Naive/OffXor functions place key entropy in the low bits (their
xor of raw words leaves high bytes constant for short keys), so this
container is their worst case; Pext resists longer because its
compacting shifts push bits toward the top (Figure 12, step 3).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from repro.containers.base import HashTableBase


class LowMixingMap(HashTableBase):
    """A unique-key map indexing buckets by the most-significant bits.

    Args:
        hash_function: the hash under test.
        discard_bits: how many least-significant bits to drop before the
            bucket modulo — the X axis of Figures 17 and 18.
    """

    __slots__ = ("_discard_bits",)

    def __init__(self, hash_function, discard_bits: int = 0, policy=None):
        if not 0 <= discard_bits < 64:
            raise ValueError(f"discard_bits out of range: {discard_bits}")
        # Assign before super().__init__: the base constructor sizes the
        # initial buckets, and any insert thereafter needs the field.
        self._discard_bits = discard_bits
        super().__init__(hash_function, policy, allow_duplicates=False)

    @property
    def discard_bits(self) -> int:
        """Least-significant bits dropped before bucket indexing."""
        return self._discard_bits

    def _bucket_index(self, hash_value: int) -> int:
        return (hash_value >> self._discard_bits) % len(self._buckets)

    def insert(self, key: bytes, value: Any = None) -> bool:
        """Insert; returns False if the key already exists."""
        return self._insert(key, value)

    def find(self, key: bytes) -> Optional[Any]:
        node = self._find(key)
        return node[2] if node is not None else None

    def erase(self, key: bytes) -> int:
        return self._erase(key)

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        for _hash, key, value in self._iter_nodes():
            yield key, value

"""Bucket-distribution statistics for hash containers.

B-Coll is a single number; these helpers expose the full shape of a
container's bucket occupancy, which is what actually drives lookup cost:

- :func:`chain_length_histogram` — how many buckets hold 0, 1, 2, ...
  nodes;
- :func:`expected_poisson_histogram` — what a perfectly uniform hash
  would produce (balls-in-bins is Poisson(λ = n/m) per bucket);
- :func:`distribution_report` — the two side by side with a chi-square
  style distance, quantifying "as good as random" for a given
  function+container pair.

These back the claim in RQ2 that synthetic functions match STL in
*bucket* behaviour even while losing badly on raw hash uniformity: with
prime-modulo indexing, both produce near-Poisson chains.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.containers.base import HashTableBase


def chain_length_histogram(table: HashTableBase) -> Dict[int, int]:
    """Map chain length → number of buckets with that many nodes."""
    histogram: Dict[int, int] = {}
    for size in table.bucket_sizes():
        histogram[size] = histogram.get(size, 0) + 1
    return histogram


def expected_poisson_histogram(
    element_count: int, bucket_count: int, max_length: int
) -> List[float]:
    """Expected bucket counts per chain length under a uniform hash.

    With ``n`` balls in ``m`` bins, the occupancy of one bin is
    approximately Poisson with λ = n/m; entry ``k`` of the result is
    ``m * P[Poisson(λ) = k]`` for k in ``0..max_length``.

    ``element_count`` of 0 is well-defined (every bucket is expected
    empty); a non-positive ``bucket_count`` leaves λ undefined and
    raises.
    """
    if bucket_count <= 0:
        raise ValueError("bucket_count must be positive")
    if element_count < 0:
        raise ValueError("element_count cannot be negative")
    lam = element_count / bucket_count
    expected = []
    for length in range(max_length + 1):
        probability = math.exp(-lam) * lam**length / math.factorial(length)
        expected.append(bucket_count * probability)
    return expected


def poisson_distance(table: HashTableBase) -> float:
    """Chi-square-style distance between observed chains and Poisson.

    Near 0 means "indistinguishable from a uniform random hash" for this
    container; large values mean clustering.  Lengths with expected
    count below 1 are pooled into the tail to keep the statistic stable.

    Degenerate tables — zero buckets or zero elements — are trivially
    Poisson and return 0.0 rather than dividing by zero.
    """
    if table.bucket_count == 0 or len(table) == 0:
        return 0.0
    histogram = chain_length_histogram(table)
    max_length = max(histogram) if histogram else 0
    expected = expected_poisson_histogram(
        len(table), table.bucket_count, max_length
    )
    distance = 0.0
    pooled_observed = 0.0
    pooled_expected = 0.0
    for length in range(max_length + 1):
        observed_count = histogram.get(length, 0)
        expected_count = expected[length]
        if expected_count < 1.0:
            pooled_observed += observed_count
            pooled_expected += expected_count
            continue
        distance += (observed_count - expected_count) ** 2 / expected_count
    if pooled_expected > 0:
        distance += (
            (pooled_observed - pooled_expected) ** 2 / pooled_expected
        )
    return distance


def max_chain_length(table: HashTableBase) -> int:
    """The worst-case probe chain in the container."""
    sizes = table.bucket_sizes()
    return max(sizes) if sizes else 0


def distribution_report(table: HashTableBase) -> Dict[str, object]:
    """One-call summary of a container's bucket health.

    Safe on degenerate tables: a zero-bucket table reports a load
    factor of 0.0 instead of dividing by zero.
    """
    histogram = chain_length_histogram(table)
    buckets = table.bucket_count
    return {
        "elements": len(table),
        "buckets": buckets,
        "load_factor": len(table) / buckets if buckets else 0.0,
        "bucket_collisions": table.bucket_collisions(),
        "max_chain": max_chain_length(table),
        "empty_buckets": histogram.get(0, 0),
        "poisson_distance": poisson_distance(table),
    }

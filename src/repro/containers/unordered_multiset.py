"""``std::unordered_multiset`` equivalent: duplicate keys allowed."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.containers.base import HashTableBase


class UnorderedMultiset(HashTableBase):
    """A multi-key hash set with STL bucket semantics.

    >>> from repro.hashes import stl_hash_bytes
    >>> table = UnorderedMultiset(stl_hash_bytes)
    >>> table.insert(b"k"), table.insert(b"k")
    (True, True)
    >>> table.count(b"k")
    2
    """

    def __init__(self, hash_function, policy=None):
        super().__init__(hash_function, policy, allow_duplicates=True)

    def insert(self, key: bytes, value=None) -> bool:
        """Insert; always succeeds for multi containers."""
        return self._insert(key, None)

    def insert_many(self, keys: Iterable[bytes]) -> int:
        """Bulk insert with one upfront resize; every key lands."""
        return self._insert_many((key, None) for key in keys)

    def find(self, key: bytes) -> bool:
        """Membership test."""
        return self._find(key) is not None

    def erase(self, key: bytes) -> int:
        """Remove every node with the key; returns the count removed."""
        return self._erase(key)

    def count(self, key: bytes) -> int:
        return self._count(key)

    def keys(self) -> Iterator[bytes]:
        for _hash, key, _value in self._iter_nodes():
            yield key

"""Shared machinery for the unordered containers.

All four STL-style containers share one chained hash table.  Nodes store
the cached hash (like libstdc++'s ``_Hash_node`` with hash caching) so
rehashing never re-invokes the user hash, and lookups compare the cached
hash before the key — the behaviour B-Time measures.

The table is intentionally *not* built on Python ``dict``: the point of
this substrate is that bucket behaviour (and therefore B-Coll and
B-Time) is governed by the same policy as the paper's C++: chaining,
``hash % prime_bucket_count``, growth by prime doubling.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.containers.hashing_policy import PrimeRehashPolicy
from repro.obs.metrics import MetricsRegistry, get_registry

HashCallable = Callable[[bytes], int]


class ContainerTelemetry:
    """Online insert/chain/resize telemetry for one table.

    Created only when container telemetry is enabled (globally via
    :func:`repro.obs.enable_container_telemetry`, or per table with the
    ``telemetry`` constructor argument), so the disabled hot path costs
    one ``is not None`` check per insert and nothing per lookup.

    Counter and histogram instruments live in a metrics registry (the
    process-wide one by default), so several tables aggregate; the
    resize event list is per-table.
    """

    __slots__ = (
        "inserts",
        "resizes",
        "chain_on_insert",
        "resize_events",
        "perfect_fast_path_hits",
    )

    CHAIN_BUCKETS = (0, 1, 2, 3, 4, 8, 16, 32)

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        registry = registry if registry is not None else get_registry()
        self.inserts = registry.counter("containers.inserts")
        self.resizes = registry.counter("containers.resizes")
        self.chain_on_insert = registry.histogram(
            "containers.chain_length_on_insert", buckets=self.CHAIN_BUCKETS
        )
        self.perfect_fast_path_hits = registry.counter(
            "containers.perfect_fast_path_hits"
        )
        self.resize_events: List[Tuple[int, int, int]] = []

    def record_insert(self, chain_length: int) -> None:
        """One insert landed on a chain of ``chain_length`` prior nodes."""
        self.inserts.inc()
        self.chain_on_insert.observe(chain_length)

    def record_perfect_hit(self) -> None:
        """One lookup resolved on the certified-perfect fast path —
        hash equality alone, no key equality probe."""
        self.perfect_fast_path_hits.inc()

    def record_resize(
        self, old_buckets: int, new_buckets: int, elements: int
    ) -> None:
        """The table grew from ``old_buckets`` to ``new_buckets``."""
        self.resizes.inc()
        self.resize_events.append((old_buckets, new_buckets, elements))

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view of this table's telemetry."""
        return {
            "inserts": self.inserts.value,
            "resizes": self.resizes.value,
            "chain_on_insert": self.chain_on_insert.snapshot(),
            "resize_events": list(self.resize_events),
            "perfect_fast_path_hits": self.perfect_fast_path_hits.value,
        }


class HashTableBase:
    """A chained hash table with STL bucket semantics.

    Args:
        hash_function: the hash under test, ``bytes -> int``.
        policy: bucket growth policy (defaults to libstdc++'s).
        allow_duplicates: multimap/multiset behaviour when True.
        telemetry: a :class:`ContainerTelemetry` to record into; when
            None, one is attached automatically iff
            :func:`repro.obs.container_telemetry_enabled` — otherwise
            the table runs the zero-overhead no-op path.
        assume_perfect: opt into the no-collision fast path — lookups
            match nodes on the cached hash alone, skipping the key
            equality probe (and any collision-chain walk past the first
            hash match).  Requires ``hash_function`` to carry a
            *certified* :class:`~repro.perfect.PerfectCertificate`
            (i.e. a :class:`~repro.perfect.PerfectHash`); sound only
            while every key looked up or stored belongs to the
            certified closed set.
    """

    __slots__ = (
        "_hash",
        "_policy",
        "_buckets",
        "_size",
        "_allow_duplicates",
        "_telemetry",
        "_assume_perfect",
    )

    def __init__(
        self,
        hash_function: HashCallable,
        policy: Optional[PrimeRehashPolicy] = None,
        allow_duplicates: bool = False,
        telemetry: Optional[ContainerTelemetry] = None,
        assume_perfect: bool = False,
    ):
        if assume_perfect:
            certificate = getattr(hash_function, "certificate", None)
            if certificate is None or not getattr(
                certificate, "certified", False
            ):
                raise ValueError(
                    "assume_perfect requires a hash carrying a certified "
                    "PerfectCertificate (see repro.perfect)"
                )
        self._hash = hash_function
        self._policy = policy or PrimeRehashPolicy()
        self._buckets: List[List[Tuple[int, bytes, Any]]] = [
            [] for _ in range(self._policy.initial_bucket_count())
        ]
        self._size = 0
        self._allow_duplicates = allow_duplicates
        self._assume_perfect = assume_perfect
        if telemetry is None:
            from repro.obs import container_telemetry_enabled

            if container_telemetry_enabled():
                telemetry = ContainerTelemetry()
        self._telemetry = telemetry

    # -- bucket mechanics ------------------------------------------------

    def _bucket_index(self, hash_value: int) -> int:
        """Map a hash value to a bucket: libstdc++ uses plain modulo."""
        return hash_value % len(self._buckets)

    def _maybe_rehash(self) -> None:
        if self._policy.needs_rehash(len(self._buckets), self._size):
            old_count = len(self._buckets)
            new_count = self._policy.next_bucket_count(
                old_count, self._size
            )
            old_buckets = self._buckets
            self._buckets = [[] for _ in range(new_count)]
            for bucket in old_buckets:
                for node in bucket:
                    self._buckets[self._bucket_index(node[0])].append(node)
            if self._telemetry is not None:
                self._telemetry.record_resize(
                    old_count, new_count, self._size
                )

    def reserve(self, element_count: int) -> None:
        """Grow the table to hold ``element_count`` elements up front.

        One rehash straight to the target prime (STL ``reserve``),
        instead of the O(log n) doubling rehashes an element-at-a-time
        fill pays.  Shrinking is never performed.
        """
        target = self._policy.bucket_count_for(element_count)
        if target <= len(self._buckets):
            return
        old_count = len(self._buckets)
        old_buckets = self._buckets
        self._buckets = [[] for _ in range(target)]
        for bucket in old_buckets:
            for node in bucket:
                self._buckets[self._bucket_index(node[0])].append(node)
        if self._telemetry is not None:
            self._telemetry.record_resize(old_count, target, self._size)

    # -- core operations -------------------------------------------------

    def _insert(self, key: bytes, value: Any) -> bool:
        """Insert a node; returns False for a rejected duplicate."""
        hash_value = self._hash(key)
        bucket = self._buckets[self._bucket_index(hash_value)]
        if not self._allow_duplicates:
            for node in bucket:
                if node[0] == hash_value and node[1] == key:
                    return False
        self._maybe_rehash()
        # The bucket list may have been reallocated by the rehash.
        target = self._buckets[self._bucket_index(hash_value)]
        target.append((hash_value, key, value))
        self._size += 1
        if self._telemetry is not None:
            self._telemetry.record_insert(len(target) - 1)
        return True

    def _insert_many(self, items: Iterable[Tuple[bytes, Any]]) -> int:
        """Bulk insert with a single upfront reservation.

        Reserves capacity for every incoming item before the loop, so
        the per-item ``_maybe_rehash`` check never fires — one resize
        replaces the O(log n) a key-at-a-time fill performs.  Returns
        the number of items actually inserted (duplicates may be
        rejected, per the container's uniqueness rule).
        """
        items = list(items)
        self.reserve(self._size + len(items))
        insert = self._insert
        inserted = 0
        for key, value in items:
            if insert(key, value):
                inserted += 1
        return inserted

    def _find(self, key: bytes) -> Optional[Tuple[int, bytes, Any]]:
        hash_value = self._hash(key)
        if self._assume_perfect:
            # Certified-perfect hash: within the closed set, equal hash
            # implies equal key, so the equality probe (and any chain
            # walk past the first hash match) is provably redundant.
            for node in self._buckets[self._bucket_index(hash_value)]:
                if node[0] == hash_value:
                    if self._telemetry is not None:
                        self._telemetry.record_perfect_hit()
                    return node
            return None
        for node in self._buckets[self._bucket_index(hash_value)]:
            if node[0] == hash_value and node[1] == key:
                return node
        return None

    def _erase(self, key: bytes) -> int:
        """Erase all nodes equal to ``key`` (STL ``erase(key)`` semantics);
        returns the number removed."""
        hash_value = self._hash(key)
        index = self._bucket_index(hash_value)
        bucket = self._buckets[index]
        kept = [
            node
            for node in bucket
            if not (node[0] == hash_value and node[1] == key)
        ]
        removed = len(bucket) - len(kept)
        if removed:
            self._buckets[index] = kept
            self._size -= removed
        return removed

    def _count(self, key: bytes) -> int:
        hash_value = self._hash(key)
        return sum(
            1
            for node in self._buckets[self._bucket_index(hash_value)]
            if node[0] == hash_value and node[1] == key
        )

    def _iter_nodes(self) -> Iterator[Tuple[int, bytes, Any]]:
        for bucket in self._buckets:
            yield from bucket

    def _clear(self) -> None:
        """Drop every node and shrink back to the initial bucket count."""
        self._buckets = [
            [] for _ in range(self._policy.initial_bucket_count())
        ]
        self._size = 0

    # -- observers ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: bytes) -> bool:
        return self._find(key) is not None

    @property
    def telemetry(self) -> Optional[ContainerTelemetry]:
        """The attached telemetry recorder, or None when disabled."""
        return self._telemetry

    @property
    def assume_perfect(self) -> bool:
        """True when the certified no-collision fast path is engaged."""
        return self._assume_perfect

    @property
    def bucket_count(self) -> int:
        """Current number of buckets."""
        return len(self._buckets)

    @property
    def load_factor(self) -> float:
        """Elements per bucket."""
        return self._size / len(self._buckets)

    def bucket_sizes(self) -> List[int]:
        """Size of every bucket, for collision statistics."""
        return [len(bucket) for bucket in self._buckets]

    def bucket_collisions(self) -> int:
        """The paper's B-Coll: extra chained nodes across all buckets.

        A bucket holding ``k`` nodes contributes ``k - 1`` collisions —
        the number of equality probes a worst-case lookup in that bucket
        pays beyond the first.
        """
        return sum(
            len(bucket) - 1 for bucket in self._buckets if len(bucket) > 1
        )

    def distinct_hash_values(self) -> int:
        """Number of distinct cached hash values currently stored."""
        return len({node[0] for bucket in self._buckets for node in bucket})

    def true_collisions(self) -> int:
        """The paper's T-Coll restricted to stored keys: distinct keys
        sharing a 64-bit hash value."""
        distinct_keys = len(
            {node[1] for bucket in self._buckets for node in bucket}
        )
        return distinct_keys - self.distinct_hash_values()

"""Shared machinery for the unordered containers.

All four STL-style containers share one chained hash table.  Nodes store
the cached hash (like libstdc++'s ``_Hash_node`` with hash caching) so
rehashing never re-invokes the user hash, and lookups compare the cached
hash before the key — the behaviour B-Time measures.

The table is intentionally *not* built on Python ``dict``: the point of
this substrate is that bucket behaviour (and therefore B-Coll and
B-Time) is governed by the same policy as the paper's C++: chaining,
``hash % prime_bucket_count``, growth by prime doubling.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.containers.hashing_policy import PrimeRehashPolicy

HashCallable = Callable[[bytes], int]


class HashTableBase:
    """A chained hash table with STL bucket semantics.

    Args:
        hash_function: the hash under test, ``bytes -> int``.
        policy: bucket growth policy (defaults to libstdc++'s).
        allow_duplicates: multimap/multiset behaviour when True.
    """

    __slots__ = (
        "_hash",
        "_policy",
        "_buckets",
        "_size",
        "_allow_duplicates",
    )

    def __init__(
        self,
        hash_function: HashCallable,
        policy: Optional[PrimeRehashPolicy] = None,
        allow_duplicates: bool = False,
    ):
        self._hash = hash_function
        self._policy = policy or PrimeRehashPolicy()
        self._buckets: List[List[Tuple[int, bytes, Any]]] = [
            [] for _ in range(self._policy.initial_bucket_count())
        ]
        self._size = 0
        self._allow_duplicates = allow_duplicates

    # -- bucket mechanics ------------------------------------------------

    def _bucket_index(self, hash_value: int) -> int:
        """Map a hash value to a bucket: libstdc++ uses plain modulo."""
        return hash_value % len(self._buckets)

    def _maybe_rehash(self) -> None:
        if self._policy.needs_rehash(len(self._buckets), self._size):
            new_count = self._policy.next_bucket_count(
                len(self._buckets), self._size
            )
            old_buckets = self._buckets
            self._buckets = [[] for _ in range(new_count)]
            for bucket in old_buckets:
                for node in bucket:
                    self._buckets[self._bucket_index(node[0])].append(node)

    # -- core operations -------------------------------------------------

    def _insert(self, key: bytes, value: Any) -> bool:
        """Insert a node; returns False for a rejected duplicate."""
        hash_value = self._hash(key)
        bucket = self._buckets[self._bucket_index(hash_value)]
        if not self._allow_duplicates:
            for node in bucket:
                if node[0] == hash_value and node[1] == key:
                    return False
        self._maybe_rehash()
        # The bucket list may have been reallocated by the rehash.
        self._buckets[self._bucket_index(hash_value)].append(
            (hash_value, key, value)
        )
        self._size += 1
        return True

    def _find(self, key: bytes) -> Optional[Tuple[int, bytes, Any]]:
        hash_value = self._hash(key)
        for node in self._buckets[self._bucket_index(hash_value)]:
            if node[0] == hash_value and node[1] == key:
                return node
        return None

    def _erase(self, key: bytes) -> int:
        """Erase all nodes equal to ``key`` (STL ``erase(key)`` semantics);
        returns the number removed."""
        hash_value = self._hash(key)
        index = self._bucket_index(hash_value)
        bucket = self._buckets[index]
        kept = [
            node
            for node in bucket
            if not (node[0] == hash_value and node[1] == key)
        ]
        removed = len(bucket) - len(kept)
        if removed:
            self._buckets[index] = kept
            self._size -= removed
        return removed

    def _count(self, key: bytes) -> int:
        hash_value = self._hash(key)
        return sum(
            1
            for node in self._buckets[self._bucket_index(hash_value)]
            if node[0] == hash_value and node[1] == key
        )

    def _iter_nodes(self) -> Iterator[Tuple[int, bytes, Any]]:
        for bucket in self._buckets:
            yield from bucket

    def _clear(self) -> None:
        """Drop every node and shrink back to the initial bucket count."""
        self._buckets = [
            [] for _ in range(self._policy.initial_bucket_count())
        ]
        self._size = 0

    # -- observers ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: bytes) -> bool:
        return self._find(key) is not None

    @property
    def bucket_count(self) -> int:
        """Current number of buckets."""
        return len(self._buckets)

    @property
    def load_factor(self) -> float:
        """Elements per bucket."""
        return self._size / len(self._buckets)

    def bucket_sizes(self) -> List[int]:
        """Size of every bucket, for collision statistics."""
        return [len(bucket) for bucket in self._buckets]

    def bucket_collisions(self) -> int:
        """The paper's B-Coll: extra chained nodes across all buckets.

        A bucket holding ``k`` nodes contributes ``k - 1`` collisions —
        the number of equality probes a worst-case lookup in that bucket
        pays beyond the first.
        """
        return sum(
            len(bucket) - 1 for bucket in self._buckets if len(bucket) > 1
        )

    def distinct_hash_values(self) -> int:
        """Number of distinct cached hash values currently stored."""
        return len({node[0] for bucket in self._buckets for node in bucket})

    def true_collisions(self) -> int:
        """The paper's T-Coll restricted to stored keys: distinct keys
        sharing a 64-bit hash value."""
        distinct_keys = len(
            {node[1] for bucket in self._buckets for node in bucket}
        )
        return distinct_keys - self.distinct_hash_values()

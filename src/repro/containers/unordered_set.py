"""``std::unordered_set`` equivalent: unique keys, no mapped values."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.containers.base import HashTableBase


class UnorderedSet(HashTableBase):
    """A unique-key hash set with STL bucket semantics.

    >>> from repro.hashes import stl_hash_bytes
    >>> table = UnorderedSet(stl_hash_bytes)
    >>> table.insert(b"k")
    True
    >>> b"k" in table
    True
    """

    def __init__(
        self, hash_function, policy=None, telemetry=None, perfect=False
    ):
        """``perfect=True`` engages the certified no-collision fast path
        (lookups skip the key equality probe); requires a
        :class:`~repro.perfect.PerfectHash` and lookups confined to its
        certified closed key set."""
        super().__init__(
            hash_function,
            policy,
            allow_duplicates=False,
            telemetry=telemetry,
            assume_perfect=perfect,
        )

    def insert(self, key: bytes, value=None) -> bool:
        """Insert; returns False if already present.

        The unused ``value`` parameter keeps the four containers
        call-compatible for the benchmark driver.
        """
        return self._insert(key, None)

    def insert_many(self, keys: Iterable[bytes]) -> int:
        """Bulk insert with one upfront resize; returns the count
        actually inserted (duplicates are skipped)."""
        return self._insert_many((key, None) for key in keys)

    def find(self, key: bytes) -> bool:
        """Membership test (the driver's search operation)."""
        return self._find(key) is not None

    def erase(self, key: bytes) -> int:
        """Remove the key; returns 0 or 1."""
        return self._erase(key)

    def count(self, key: bytes) -> int:
        return self._count(key)

    def keys(self) -> Iterator[bytes]:
        """Iterate stored keys in bucket order."""
        for _hash, key, _value in self._iter_nodes():
            yield key

    def clear(self) -> None:
        """Remove every entry (STL ``clear``)."""
        self._clear()

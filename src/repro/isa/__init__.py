"""Software implementations of the machine instructions SEPE relies on.

The paper's generated C++ uses x86 ``pext`` (parallel bit extract), the
``aesenc`` AES-round instruction, and unaligned 64-bit little-endian loads.
None of those are available to pure Python, so this package provides
bit-exact software equivalents:

- :mod:`repro.isa.bits` — ``pext``/``pdep``, popcount, rotations and the
  mask-run decomposition SEPE's Python backend uses to make constant-mask
  extraction fast.
- :mod:`repro.isa.aes` — one full AES round (SubBytes, ShiftRows,
  MixColumns, AddRoundKey) over a 128-bit integer state, matching the
  semantics of x86 ``aesenc`` / aarch64 ``AESE + AESMC`` as used by the
  paper's **Aes** hash family.
- :mod:`repro.isa.memory` — ``load_u64_le``, partial-word loads, and the
  ``shift_mix`` helper from libstdc++'s murmur implementation.
"""

from repro.isa.aes import aesenc
from repro.isa.bits import (
    MASK64,
    mask_to_runs,
    pdep,
    pext,
    pext_via_runs,
    popcount,
    rotl64,
    rotr64,
)
from repro.isa.memory import load_bytes, load_u64_le, shift_mix

__all__ = [
    "MASK64",
    "aesenc",
    "load_bytes",
    "load_u64_le",
    "mask_to_runs",
    "pdep",
    "pext",
    "pext_via_runs",
    "popcount",
    "rotl64",
    "rotr64",
    "shift_mix",
]

"""A single software AES round, matching the x86 ``aesenc`` instruction.

The paper's **Aes** hash family combines key words with one AES encode
round (``aesenc`` on x86, ``AESE`` on aarch64) instead of xor, trading a
slower instruction for better mixing (Section 4, "Synthetic Hash
Functions").  ``aesenc dst, key`` computes::

    state = ShiftRows(dst)
    state = SubBytes(state)
    state = MixColumns(state)
    dst   = state XOR key

This module implements those four steps bit-exactly over 128-bit integers
(little-endian byte order, i.e. byte 0 of the state is the low-order byte,
exactly as an ``xmm`` register maps to memory).  The S-box is generated
from first principles (GF(2^8) inversion plus the affine map) at import
time rather than pasted as a table, and verified by unit tests against
published vectors.
"""

from __future__ import annotations

from typing import List

MASK128 = (1 << 128) - 1
"""All-ones 128-bit mask for truncating state values."""


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    product = 0
    for _ in range(8):
        if b & 1:
            product ^= a
        b >>= 1
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= 0x1B
    return product


def _build_sbox() -> List[int]:
    """Construct the AES S-box: multiplicative inverse then affine transform."""
    # Build inverses via exponentiation tables over the generator 3.
    exp = [0] * 256
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value = _gf_mul(value, 3)
    sbox = [0] * 256
    for byte in range(256):
        # exp has period 255, so reduce the exponent: byte 1 has log 0 and
        # its inverse is exp[255 % 255] == exp[0] == 1.
        inv = 0 if byte == 0 else exp[(255 - log[byte]) % 255]
        # Affine transformation: b ^= rotl(b,1)^rotl(b,2)^rotl(b,3)^rotl(b,4) ^ 0x63
        result = inv
        for shift in range(1, 5):
            result ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox[byte] = result ^ 0x63
    return sbox


SBOX = _build_sbox()
"""The AES substitution box, generated from GF(2^8) arithmetic."""

INV_SBOX = [0] * 256
for _index, _substituted in enumerate(SBOX):
    INV_SBOX[_substituted] = _index

# ShiftRows permutation on the 16 state bytes.  The AES state is column
# major: byte i sits at row i % 4, column i // 4.  Row r rotates left by r,
# so the output byte at (row r, col c) comes from (row r, col (c + r) % 4);
# output index o = 4*c + r reads input index _SHIFT_ROWS[o].
_SHIFT_ROWS = [4 * ((o // 4 + o % 4) % 4) + o % 4 for o in range(16)]


def _bytes_of(state: int) -> List[int]:
    """Split a 128-bit integer into its 16 little-endian bytes."""
    return [(state >> (8 * i)) & 0xFF for i in range(16)]


def _from_bytes(byte_values: List[int]) -> int:
    """Reassemble 16 little-endian bytes into a 128-bit integer."""
    state = 0
    for index, byte in enumerate(byte_values):
        state |= byte << (8 * index)
    return state


def sub_bytes(state: int) -> int:
    """Apply the AES S-box to every byte of the 128-bit state."""
    return _from_bytes([SBOX[b] for b in _bytes_of(state)])


def shift_rows(state: int) -> int:
    """Apply the AES ShiftRows permutation to the 128-bit state."""
    source = _bytes_of(state)
    return _from_bytes([source[_SHIFT_ROWS[i]] for i in range(16)])


def mix_columns(state: int) -> int:
    """Apply the AES MixColumns transform to each 4-byte column."""
    source = _bytes_of(state)
    output = [0] * 16
    for col in range(4):
        a0, a1, a2, a3 = source[4 * col : 4 * col + 4]
        output[4 * col + 0] = _gf_mul(a0, 2) ^ _gf_mul(a1, 3) ^ a2 ^ a3
        output[4 * col + 1] = a0 ^ _gf_mul(a1, 2) ^ _gf_mul(a2, 3) ^ a3
        output[4 * col + 2] = a0 ^ a1 ^ _gf_mul(a2, 2) ^ _gf_mul(a3, 3)
        output[4 * col + 3] = _gf_mul(a0, 3) ^ a1 ^ a2 ^ _gf_mul(a3, 2)
    return _from_bytes(output)


def aesenc(state: int, round_key: int) -> int:
    """One AES encryption round: the semantics of x86 ``aesenc``.

    >>> aesenc(0, 0) == mix_columns(sub_bytes(0))
    True
    """
    state &= MASK128
    round_key &= MASK128
    state = shift_rows(state)
    state = sub_bytes(state)
    state = mix_columns(state)
    return state ^ round_key


# ---------------------------------------------------------------------------
# Fast path: precomputed T-tables collapsing SubBytes+ShiftRows+MixColumns.
# The Aes hash family calls aesenc per key word, so per-call cost matters for
# the benchmark shape.  Each table maps one input byte directly to its 32-bit
# column contribution.
# ---------------------------------------------------------------------------

def _build_ttables() -> List[List[int]]:
    tables: List[List[int]] = [[0] * 256 for _ in range(4)]
    for byte in range(256):
        s = SBOX[byte]
        m = [
            [2, 3, 1, 1],
            [1, 2, 3, 1],
            [1, 1, 2, 3],
            [3, 1, 1, 2],
        ]
        for row in range(4):
            word = 0
            for out_row in range(4):
                word |= _gf_mul(s, m[out_row][row]) << (8 * out_row)
            tables[row][byte] = word
    return tables


_TTABLES = _build_ttables()


def aesenc_fast(state: int, round_key: int) -> int:
    """T-table implementation of :func:`aesenc` (bit-exact, ~4x faster).

    Tests assert ``aesenc_fast == aesenc`` over random states.
    """
    state &= MASK128
    t0, t1, t2, t3 = _TTABLES
    source = _bytes_of(state)
    result = 0
    for col in range(4):
        # After ShiftRows, column `col` row `r` holds the byte from
        # column (col + r) % 4, row r of the input.
        word = (
            t0[source[4 * ((col + 0) % 4) + 0]]
            ^ t1[source[4 * ((col + 1) % 4) + 1]]
            ^ t2[source[4 * ((col + 2) % 4) + 2]]
            ^ t3[source[4 * ((col + 3) % 4) + 3]]
        )
        result |= word << (32 * col)
    return (result ^ round_key) & MASK128

"""Word-level memory operations used by generated and baseline hashes.

These mirror the helpers in libstdc++'s ``hash_bytes.cc`` (the STL murmur
implementation of the paper's Figure 1) and the ``load_u64_le`` used by the
paper's generated C++ (Figure 5c).  Keys are Python ``bytes``; machine words
are 64-bit little-endian unsigned integers.
"""

from __future__ import annotations

from repro.isa.bits import MASK64


def load_u64_le(data: bytes, offset: int = 0) -> int:
    """Load eight bytes starting at ``offset`` as a little-endian u64.

    Mirrors the unaligned load in the paper's generated functions
    (``load_u64_le(key.c_str() + off)``).  Raises :class:`ValueError` when
    fewer than eight bytes are available, because the C++ equivalent would
    read out of bounds — generated plans must never do that.
    """
    if offset < 0:
        raise ValueError(f"negative offset: {offset}")
    if offset + 8 > len(data):
        raise ValueError(
            f"load_u64_le out of bounds: offset {offset} + 8 > len {len(data)}"
        )
    return int.from_bytes(data[offset : offset + 8], "little")


def load_u32_le(data: bytes, offset: int = 0) -> int:
    """Load four bytes starting at ``offset`` as a little-endian u32."""
    if offset < 0:
        raise ValueError(f"negative offset: {offset}")
    if offset + 4 > len(data):
        raise ValueError(
            f"load_u32_le out of bounds: offset {offset} + 4 > len {len(data)}"
        )
    return int.from_bytes(data[offset : offset + 4], "little")


def load_bytes(data: bytes, offset: int, count: int) -> int:
    """Load ``count`` (1..7) trailing bytes as a little-endian integer.

    This is libstdc++'s ``load_bytes`` helper, used for the unaligned tail
    of a key in Figure 1, line 13.
    """
    if not 0 < count < 8:
        raise ValueError(f"load_bytes count must be in 1..7, got {count}")
    if offset < 0 or offset + count > len(data):
        raise ValueError(
            f"load_bytes out of bounds: offset {offset}, count {count}, "
            f"len {len(data)}"
        )
    return int.from_bytes(data[offset : offset + count], "little")


def shift_mix(value: int) -> int:
    """libstdc++'s ``shift_mix``: ``v ^ (v >> 47)`` on 64 bits."""
    value &= MASK64
    return value ^ (value >> 47)

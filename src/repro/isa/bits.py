"""Bit-manipulation primitives: software ``pext``/``pdep`` and friends.

The x86 BMI2 instruction ``pext`` gathers the bits of a source word selected
by a mask into the contiguous low-order bits of the result (paper,
Figure 11).  ``pdep`` is its inverse scatter.  Python integers are
arbitrary-precision, so these functions operate on 64-bit values and mask
their results accordingly.

Because the masks SEPE generates are compile-time constants, the Python
code generator does not emit a bit-by-bit loop.  Instead it decomposes the
mask into contiguous runs of ones (:func:`mask_to_runs`) and emits one
shift/and/or triple per run (:func:`pext_via_runs`), which is how a software
fallback for ``pext`` is typically written.  Both strategies are bit-exact
with the hardware instruction; tests cross-check them.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

MASK64 = (1 << 64) - 1
"""All-ones 64-bit mask used to truncate Python big-ints to machine words."""


def popcount(value: int) -> int:
    """Return the number of set bits in ``value``.

    Negative inputs are rejected because they have conceptually infinite
    two's-complement popcount.
    """
    if value < 0:
        raise ValueError("popcount requires a non-negative integer")
    return bin(value).count("1")


def rotl64(value: int, amount: int) -> int:
    """Rotate a 64-bit ``value`` left by ``amount`` bits (mod 64)."""
    amount %= 64
    value &= MASK64
    if amount == 0:
        return value
    return ((value << amount) | (value >> (64 - amount))) & MASK64


def rotr64(value: int, amount: int) -> int:
    """Rotate a 64-bit ``value`` right by ``amount`` bits (mod 64)."""
    return rotl64(value, 64 - (amount % 64))


def pext(src: int, mask: int) -> int:
    """Parallel bit extract, the semantics of x86 ``pext`` (Figure 11).

    Every bit of ``src`` whose position is set in ``mask`` is copied, in
    order, into the low bits of the result; all other result bits are zero.

    >>> hex(pext(0xAB, 0xF0))
    '0xa'
    >>> bin(pext(0b101101, 0b111000))
    '0b101'
    """
    src &= MASK64
    mask &= MASK64
    dst = 0
    out_pos = 0
    while mask:
        low = mask & -mask  # lowest set bit of the mask
        if src & low:
            dst |= 1 << out_pos
        out_pos += 1
        mask ^= low
    return dst


def pdep(src: int, mask: int) -> int:
    """Parallel bit deposit, the inverse of :func:`pext`.

    The low bits of ``src`` are scattered, in order, into the positions set
    in ``mask``.

    >>> hex(pdep(0xA, 0xF0))
    '0xa0'
    """
    src &= MASK64
    mask &= MASK64
    dst = 0
    in_pos = 0
    while mask:
        low = mask & -mask
        if src & (1 << in_pos):
            dst |= low
        in_pos += 1
        mask ^= low
    return dst


@lru_cache(maxsize=1024)
def _mask_to_runs_cached(mask: int) -> Tuple[Tuple[int, int, int], ...]:
    """Memoized core of :func:`mask_to_runs` over the normalized mask.

    Repeated synthesis of the same format decomposes the same masks for
    every pext emission; the decomposition is pure in the 64-bit mask, so
    it is cached (as an immutable tuple — callers get fresh lists).
    """
    runs: List[Tuple[int, int, int]] = []
    out_pos = 0
    bit = 0
    while mask >> bit:
        if (mask >> bit) & 1:
            start = bit
            while (mask >> bit) & 1:
                bit += 1
            length = bit - start
            runs.append((start, (1 << length) - 1, out_pos))
            out_pos += length
        else:
            bit += 1
    return tuple(runs)


def mask_to_runs(mask: int) -> List[Tuple[int, int, int]]:
    """Decompose ``mask`` into contiguous runs of set bits.

    Returns a list of ``(shift, run_mask, out_pos)`` triples, ordered from
    the least-significant run upward, such that::

        pext(x, mask) == OR over runs of ((x >> shift) & run_mask) << out_pos

    ``shift`` is the bit index where the run starts in the source,
    ``run_mask`` is ``(1 << run_length) - 1``, and ``out_pos`` is where the
    run lands in the compacted output.  This is the decomposition SEPE's
    Python backend unrolls into straight-line code, replacing the hardware
    ``pext`` with a handful of shifts.

    >>> mask_to_runs(0x0F0F)
    [(0, 15, 0), (8, 15, 4)]
    """
    if mask < 0:
        raise ValueError("mask must be non-negative")
    return list(_mask_to_runs_cached(mask & MASK64))


def pext_via_runs(src: int, runs: List[Tuple[int, int, int]]) -> int:
    """Evaluate a pre-decomposed parallel bit extraction.

    ``runs`` must come from :func:`mask_to_runs`.  Equivalent to
    ``pext(src, mask)`` for the originating mask, but costs one shift/and/or
    per contiguous run rather than one branch per mask bit.
    """
    dst = 0
    for shift, run_mask, out_pos in runs:
        dst |= ((src >> shift) & run_mask) << out_pos
    return dst

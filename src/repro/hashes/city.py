"""CityHash64, the paper's **City** baseline.

A pure-Python port of Google's ``CityHash64`` (``city.cc``), the
string-specialized hash Abseil still ships.  The structure — length-class
dispatch into ``HashLen0to16`` / ``HashLen17to32`` / ``HashLen33to64`` and
a 64-byte main loop over two 128-bit lanes — is ported faithfully,
constants included.  Offline we cannot diff against the C++ binary, so
tests pin self-consistency (determinism, length-class boundaries, and
avalanche quality) rather than upstream digests.
"""

from __future__ import annotations

from typing import Tuple

from repro.isa.bits import MASK64

K0 = 0xC3A5C85C97CB3127
K1 = 0xB492B66FBE98F273
K2 = 0x9AE16A3B2F90404F
K_MUL = 0x9DDFEA08EB382D69


def _fetch64(data: bytes, offset: int = 0) -> int:
    return int.from_bytes(data[offset : offset + 8], "little")


def _fetch32(data: bytes, offset: int = 0) -> int:
    return int.from_bytes(data[offset : offset + 4], "little")


def _rotate(value: int, shift: int) -> int:
    if shift == 0:
        return value & MASK64
    value &= MASK64
    return ((value >> shift) | (value << (64 - shift))) & MASK64


def _shift_mix(value: int) -> int:
    value &= MASK64
    return value ^ (value >> 47)


def _bswap64(value: int) -> int:
    return int.from_bytes((value & MASK64).to_bytes(8, "little"), "big")


def _hash128_to_64(low: int, high: int) -> int:
    a = ((low ^ high) * K_MUL) & MASK64
    a ^= a >> 47
    b = ((high ^ a) * K_MUL) & MASK64
    b ^= b >> 47
    return (b * K_MUL) & MASK64


def _hash_len16(u: int, v: int) -> int:
    return _hash128_to_64(u, v)


def _hash_len16_mul(u: int, v: int, mul: int) -> int:
    a = ((u ^ v) * mul) & MASK64
    a ^= a >> 47
    b = ((v ^ a) * mul) & MASK64
    b ^= b >> 47
    return (b * mul) & MASK64


def _hash_len0_to16(data: bytes) -> int:
    length = len(data)
    if length >= 8:
        mul = (K2 + length * 2) & MASK64
        a = (_fetch64(data) + K2) & MASK64
        b = _fetch64(data, length - 8)
        c = ((_rotate(b, 37) * mul) + a) & MASK64
        d = ((_rotate(a, 25) + b) * mul) & MASK64
        return _hash_len16_mul(c, d, mul)
    if length >= 4:
        mul = (K2 + length * 2) & MASK64
        a = _fetch32(data)
        return _hash_len16_mul(
            (length + (a << 3)) & MASK64, _fetch32(data, length - 4), mul
        )
    if length > 0:
        a = data[0]
        b = data[length >> 1]
        c = data[length - 1]
        y = (a + (b << 8)) & MASK64
        z = (length + (c << 2)) & MASK64
        return (_shift_mix((y * K2) ^ (z * K0)) * K2) & MASK64
    return K2


def _hash_len17_to32(data: bytes) -> int:
    length = len(data)
    mul = (K2 + length * 2) & MASK64
    a = (_fetch64(data) * K1) & MASK64
    b = _fetch64(data, 8)
    c = (_fetch64(data, length - 8) * mul) & MASK64
    d = (_fetch64(data, length - 16) * K2) & MASK64
    return _hash_len16_mul(
        (_rotate((a + b) & MASK64, 43) + _rotate(c, 30) + d) & MASK64,
        (a + _rotate((b + K2) & MASK64, 18) + c) & MASK64,
        mul,
    )


def _weak_hash_len32_with_seeds_words(
    w: int, x: int, y: int, z: int, a: int, b: int
) -> Tuple[int, int]:
    a = (a + w) & MASK64
    b = _rotate((b + a + z) & MASK64, 21)
    c = a
    a = (a + x) & MASK64
    a = (a + y) & MASK64
    b = (b + _rotate(a, 44)) & MASK64
    return (a + z) & MASK64, (b + c) & MASK64


def _weak_hash_len32_with_seeds(
    data: bytes, offset: int, a: int, b: int
) -> Tuple[int, int]:
    return _weak_hash_len32_with_seeds_words(
        _fetch64(data, offset),
        _fetch64(data, offset + 8),
        _fetch64(data, offset + 16),
        _fetch64(data, offset + 24),
        a,
        b,
    )


def _hash_len33_to64(data: bytes) -> int:
    length = len(data)
    mul = (K2 + length * 2) & MASK64
    a = (_fetch64(data) * K2) & MASK64
    b = _fetch64(data, 8)
    c = _fetch64(data, length - 24)
    d = _fetch64(data, length - 32)
    e = (_fetch64(data, 16) * K2) & MASK64
    f = (_fetch64(data, 24) * 9) & MASK64
    g = _fetch64(data, length - 8)
    h = (_fetch64(data, length - 16) * mul) & MASK64
    u = (_rotate((a + g) & MASK64, 43) + ((_rotate(b, 30) + c) * 9)) & MASK64
    v = ((((a + g) & MASK64) ^ d) + f + 1) & MASK64
    w = (_bswap64(((u + v) & MASK64) * mul) + h) & MASK64
    x = (_rotate((e + f) & MASK64, 42) + c) & MASK64
    y = ((_bswap64(((v + w) & MASK64) * mul) + g) * mul) & MASK64
    z = (e + f + c) & MASK64
    a = (_bswap64((((x + z) & MASK64) * mul + y) & MASK64) + b) & MASK64
    b = (_shift_mix((((z + a) & MASK64) * mul + d + h) & MASK64) * mul) & MASK64
    return (b + x) & MASK64


def city_hash64(key: bytes) -> int:
    """Hash ``key`` with CityHash64.

    >>> city_hash64(b"hello") == city_hash64(b"hello")
    True
    >>> city_hash64(b"hello") != city_hash64(b"hellp")
    True
    """
    length = len(key)
    if length <= 32:
        if length <= 16:
            return _hash_len0_to16(key)
        return _hash_len17_to32(key)
    if length <= 64:
        return _hash_len33_to64(key)

    x = _fetch64(key, length - 40)
    y = (_fetch64(key, length - 16) + _fetch64(key, length - 56)) & MASK64
    z = _hash_len16(
        (_fetch64(key, length - 48) + length) & MASK64,
        _fetch64(key, length - 24),
    )
    v = _weak_hash_len32_with_seeds(key, length - 64, length, z)
    w = _weak_hash_len32_with_seeds(key, length - 32, (y + K1) & MASK64, x)
    x = ((x * K1) + _fetch64(key)) & MASK64

    offset = 0
    remaining = (length - 1) & ~63
    while True:
        x = (
            _rotate((x + y + v[0] + _fetch64(key, offset + 8)) & MASK64, 37)
            * K1
        ) & MASK64
        y = (
            _rotate((y + v[1] + _fetch64(key, offset + 48)) & MASK64, 42) * K1
        ) & MASK64
        x ^= w[1]
        y = (y + v[0] + _fetch64(key, offset + 40)) & MASK64
        z = (_rotate((z + w[0]) & MASK64, 33) * K1) & MASK64
        v = _weak_hash_len32_with_seeds(
            key, offset, (v[1] * K1) & MASK64, (x + w[0]) & MASK64
        )
        w = _weak_hash_len32_with_seeds(
            key,
            offset + 32,
            (z + w[1]) & MASK64,
            (y + _fetch64(key, offset + 16)) & MASK64,
        )
        z, x = x, z
        offset += 64
        remaining -= 64
        if remaining == 0:
            break
    return _hash_len16(
        (_hash_len16(v[0], w[0]) + (_shift_mix(y) * K1) + z) & MASK64,
        (_hash_len16(v[1], w[1]) + x) & MASK64,
    )

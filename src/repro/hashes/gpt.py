"""Per-format hashes in the style of the paper's **Gpt** baseline.

The paper's Gpt functions were produced by prompting ChatGPT 3.5 with the
key format, instructing it to unroll the loop, skip the constant
separator characters, and avoid ``std::hash`` (see the MAC prompt in the
paper's footnote 3).  ChatGPT is not available offline, so these are
handwritten to the same recipe — the idioms such prompts reliably
produce: Java-style ``h = h * 31 + c`` accumulation, or packing parsed
fields with byte shifts.

The packing variants reproduce the weakness Table 1 reports: the IPv4
function shifts each three-digit group (0..999, ten bits of information)
by only eight bits, so adjacent groups overlap and collide — the paper
attributes 7,857 of Gpt's 7,865 collisions to exactly this kind of
mistake on IPv4 keys.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.isa.bits import MASK64

GptHash = Callable[[bytes], int]


def gpt_ssn(key: bytes) -> int:
    """SSN ``ddd-dd-dddd``: unrolled 31x accumulation over the digits."""
    h = 17
    for index in (0, 1, 2, 4, 5, 7, 8, 9, 10):
        h = (h * 31 + key[index]) & MASK64
    return h


def gpt_cpf(key: bytes) -> int:
    """CPF ``ddd.ddd.ddd-dd``: unrolled 31x accumulation over the digits."""
    h = 17
    for index in (0, 1, 2, 4, 5, 6, 8, 9, 10, 12, 13):
        h = (h * 31 + key[index]) & MASK64
    return h


def gpt_mac(key: bytes) -> int:
    """MAC ``hh-hh-hh-hh-hh-hh``: parse hex pairs, pack a byte at a time.

    This is the answer the paper's published MAC prompt elicits: the
    separators are skipped and the six octets are packed into 48 bits —
    a bijection for well-formed MACs, hence Gpt's good MAC uniformity
    (Section 4.3).
    """
    h = 0
    for offset in (0, 3, 6, 9, 12, 15):
        high = key[offset]
        low = key[offset + 1]
        high = high - 48 if high <= 57 else (high | 0x20) - 87
        low = low - 48 if low <= 57 else (low | 0x20) - 87
        h = (h << 8) | ((high << 4) | low)
    return h & MASK64


def gpt_ipv4(key: bytes) -> int:
    """IPv4 ``ddd.ddd.ddd.ddd``: parse the octet groups and *add* them — WEAK.

    Additive combination ("the dots are constant, so sum the four octet
    values") compresses the whole key space into a ~4,000-value range, so
    thousands of 10,000 random keys collide.  Table 1 reports exactly
    this failure: 7,857 of Gpt's 7,865 collisions come from IPv4 keys.
    """
    h = 0
    for offset in (0, 4, 8, 12):
        group = (
            (key[offset] - 48) * 100
            + (key[offset + 1] - 48) * 10
            + (key[offset + 2] - 48)
        )
        h += group
    return h & MASK64


def gpt_ipv6(key: bytes) -> int:
    """IPv6 ``hhhh:`` x8: parse 16-bit hex groups, fold with 31x mixing."""
    h = 1469598103
    for group_index in range(8):
        offset = group_index * 5
        value = 0
        for digit_offset in range(4):
            byte = key[offset + digit_offset]
            nibble = byte - 48 if byte <= 57 else (byte | 0x20) - 87
            value = (value << 4) | nibble
        h = (h * 31 + value) & MASK64
    return h


def gpt_ints(key: bytes) -> int:
    """INTS (100 digits): Horner accumulation base 31 over all digits."""
    h = 7
    for byte in key:
        h = (h * 31 + (byte - 48)) & MASK64
    return h


def gpt_url(key: bytes) -> int:
    """URL keys: 31x accumulation over the variable suffix only.

    The prompt recipe says to skip the constant prefix; ChatGPT-style
    answers hash the last 26 characters (the random token plus
    ``.html``).
    """
    h = 17
    for byte in key[-26:]:
        h = (h * 31 + byte) & MASK64
    return h


GPT_HASHES: Dict[str, GptHash] = {
    "SSN": gpt_ssn,
    "CPF": gpt_cpf,
    "MAC": gpt_mac,
    "IPV4": gpt_ipv4,
    "IPV6": gpt_ipv6,
    "INTS": gpt_ints,
    "URL1": gpt_url,
    "URL2": gpt_url,
}
"""The Gpt function for each key format of Section 4."""


def gpt_hash_for(key_type: str) -> GptHash:
    """Look up the Gpt hash for a paper key-format name.

    Raises:
        KeyError: for unknown format names.
    """
    return GPT_HASHES[key_type.upper()]

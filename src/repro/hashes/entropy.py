"""Entropy-Learned Hashing, the paper's closest related work.

Hentschel et al. (SIGMOD 2022) constrain hashing to the *high-entropy*
byte positions of fixed-length keys: observe a key sample, compute the
Shannon entropy of each byte position, and hash only the top positions
with any well-known hash function.  The paper's Related Work section
positions SEPE against this: "Hentschel et al. do not generate code for
hash functions; rather [...] they can constrain any well-known hash
function to only high entropy bits."

This module implements that scheme so the comparison is runnable:
:func:`learn_positions` is the training step, :class:`EntropyLearnedHash`
the constrained function (defaulting to the STL murmur port as the base
hash).  Against SEPE's OffXor it differs in two ways worth measuring:

- selection granularity is *bytes from data* rather than *bits from
  format*, so it adapts to biased data an inferred format misses;
- the gathered bytes must be copied into a contiguous buffer before the
  base hash runs, where SEPE's generated loads read the key in place.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import EmptyKeySetError
from repro.hashes.murmur_stl import stl_hash_bytes

HashCallable = Callable[[bytes], int]


def byte_position_entropies(keys: Sequence[bytes]) -> List[float]:
    """Shannon entropy (bits) of each byte position across ``keys``.

    Positions beyond a key's length are skipped for that key; the
    entropy of a position no key reaches is 0.

    Raises:
        EmptyKeySetError: with no keys to learn from.
    """
    if not keys:
        raise EmptyKeySetError("entropy learning requires sample keys")
    max_len = max(len(key) for key in keys)
    entropies: List[float] = []
    for position in range(max_len):
        counts = Counter(
            key[position] for key in keys if position < len(key)
        )
        total = sum(counts.values())
        entropy = 0.0
        for count in counts.values():
            probability = count / total
            entropy -= probability * math.log2(probability)
        entropies.append(entropy)
    return entropies


def learn_positions(
    keys: Sequence[bytes],
    num_positions: Optional[int] = None,
    min_entropy_bits: float = 0.05,
) -> Tuple[int, ...]:
    """Choose the byte positions worth hashing.

    By default keeps every position whose entropy clears
    ``min_entropy_bits`` (constant separators measure 0.0 exactly);
    ``num_positions`` instead keeps the top-k positions by entropy, which
    is Hentschel et al.'s knob for trading collisions against speed.

    Positions are returned sorted ascending so gathers are sequential.
    """
    entropies = byte_position_entropies(keys)
    if num_positions is not None:
        if num_positions <= 0:
            raise ValueError("num_positions must be positive")
        ranked = sorted(
            range(len(entropies)),
            key=lambda position: entropies[position],
            reverse=True,
        )[:num_positions]
        return tuple(sorted(ranked))
    return tuple(
        position
        for position, entropy in enumerate(entropies)
        if entropy >= min_entropy_bits
    )


@dataclass(frozen=True)
class EntropyLearnedHash:
    """A base hash constrained to learned high-entropy byte positions.

    Attributes:
        positions: byte positions gathered before hashing.
        base_hash: the well-known hash applied to the gathered bytes
            (STL murmur by default, like the original work's evaluation).
    """

    positions: Tuple[int, ...]
    base_hash: HashCallable = stl_hash_bytes

    def __post_init__(self) -> None:
        if not self.positions:
            raise ValueError("EntropyLearnedHash needs at least one position")
        if any(position < 0 for position in self.positions):
            raise ValueError("byte positions must be non-negative")

    def __call__(self, key: bytes) -> int:
        gathered = bytes(
            key[position] for position in self.positions
            if position < len(key)
        )
        return self.base_hash(gathered)

    @staticmethod
    def train(
        keys: Sequence[bytes],
        num_positions: Optional[int] = None,
        base_hash: HashCallable = stl_hash_bytes,
    ) -> "EntropyLearnedHash":
        """Learn positions from a key sample and build the function.

        >>> keys = [b"a-0", b"b-1", b"c-2"]
        >>> hasher = EntropyLearnedHash.train(keys)
        >>> hasher.positions   # the constant '-' at position 1 is dropped
        (0, 2)
        """
        return EntropyLearnedHash(
            positions=learn_positions(keys, num_positions=num_positions),
            base_hash=base_hash,
        )

"""libstdc++'s ``_Hash_bytes``: the paper's **STL** baseline (Figure 1).

This is the murmur-derived function behind ``std::hash<std::string>`` in
GCC's standard library (``libstdc++-v3/libsupc++/hash_bytes.cc``).  The
port is line-for-line faithful: same multiplier, same seed, same aligned
main loop, same little-endian tail load, same final avalanche.
"""

from __future__ import annotations

from repro.isa.bits import MASK64

MUL = ((0xC6A4A793 << 32) + 0x5BD1E995) & MASK64
"""The murmur multiplier from Figure 1, line 2."""

DEFAULT_SEED = 0xC70F6907
"""libstdc++'s default seed for ``std::hash`` (``_Hash_impl::hash``)."""


def _shift_mix(value: int) -> int:
    return value ^ (value >> 47)


def stl_hash_bytes(key: bytes, seed: int = DEFAULT_SEED) -> int:
    """Hash ``key`` exactly as ``std::hash<std::string>`` does on 64-bit.

    The main loop consumes eight bytes at a time (Figure 1, lines 7-11);
    a sub-word tail is folded with a partial little-endian load (lines
    12-16); two shift-mix rounds finish (lines 17-18).

    >>> stl_hash_bytes(b"") == stl_hash_bytes(b"")
    True
    >>> stl_hash_bytes(b"abc") != stl_hash_bytes(b"abd")
    True
    """
    length = len(key)
    len_aligned = length & ~0x7
    hash_value = (seed ^ (length * MUL)) & MASK64
    for offset in range(0, len_aligned, 8):
        data = int.from_bytes(key[offset : offset + 8], "little")
        data = (_shift_mix((data * MUL) & MASK64) * MUL) & MASK64
        hash_value ^= data
        hash_value = (hash_value * MUL) & MASK64
    if length & 0x7:
        data = int.from_bytes(key[len_aligned:length], "little")
        hash_value ^= data
        hash_value = (hash_value * MUL) & MASK64
    hash_value = (_shift_mix(hash_value) * MUL) & MASK64
    hash_value = _shift_mix(hash_value)
    return hash_value

"""A perfect-hash generator in the style of GNU gperf (**Gperf** baseline).

gperf takes a *closed* set of keywords and emits a hash of the form::

    hash(key) = len(key) + asso[key[p1]] + asso[key[p2]] + ...

where ``p1, p2, ...`` are a small set of selected character positions and
``asso`` is a 256-entry table of "associated values" searched so the
keywords map to distinct values.  This module implements that scheme:
greedy position selection to make keyword signatures unique, then an
iterative repair search over the association table (gperf's core trick).

The paper feeds gperf 1,000 random keys and then runs it on *open* key
sets (Section 4): the generated function stays cheap to evaluate — low
H-Time in Table 1 — but keys outside the training set collide massively
(55,502 T-Coll), which this implementation reproduces by construction:
unseen characters at the selected positions share association values.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.errors import SynthesisError

MAX_POSITIONS = 16
"""Upper bound on selected key positions, mirroring gperf's -m search."""

MAX_REPAIR_ROUNDS = 200
"""Bound on association-value repair iterations."""


@dataclass
class GperfFunction:
    """A generated gperf-style hash: positions + association table.

    Attributes:
        positions: selected character positions (may include ``-1``,
            gperf's pseudo-position for the last character).
        asso: the 256-entry association table.
        table_size: size of the lookup table the generated C code would
            allocate (max hash + 1) — the "large lookup table" the paper
            blames for Gperf's poor B-Time.
        keywords: the training keys, kept for the perfectness check.
    """

    positions: Tuple[int, ...]
    asso: Tuple[int, ...]
    table_size: int
    keywords: Tuple[bytes, ...]

    def __call__(self, key: bytes) -> int:
        value = len(key)
        for position in self.positions:
            index = position if position >= 0 else len(key) - 1
            if index < len(key):
                value += self.asso[key[index]]
        return value

    def hash_many(self, keys: Sequence[bytes]) -> List[int]:
        """Batch evaluation, one value per key (pipeline ``hash_many``).

        Matches :meth:`__call__` bit for bit; the association table and
        positions are hoisted out of the loop so the perfect-vs-gperf
        benchmark compares batched paths like with like.
        """
        asso = self.asso
        positions = self.positions
        values: List[int] = []
        append = values.append
        for key in keys:
            value = len(key)
            for position in positions:
                index = position if position >= 0 else len(key) - 1
                if index < len(key):
                    value += asso[key[index]]
            append(value)
        return values

    def is_perfect_on_keywords(self) -> bool:
        """True when training keywords all map to distinct hash values."""
        values = {self(keyword) for keyword in self.keywords}
        return len(values) == len(set(self.keywords))


def _signature(key: bytes, positions: Sequence[int]) -> Tuple:
    parts: List[int] = [len(key)]
    for position in positions:
        index = position if position >= 0 else len(key) - 1
        parts.append(key[index] if index < len(key) else -1)
    return tuple(parts)


def _select_positions(keywords: Sequence[bytes]) -> List[int]:
    """Greedily pick positions until keyword signatures are unique.

    Each step adds the position that maximally reduces the number of
    colliding signature groups, like gperf's position search.
    """
    candidates = list(range(min(max(len(k) for k in keywords), 255))) + [-1]
    chosen: List[int] = []

    def collisions(positions: Sequence[int]) -> int:
        seen = {}
        count = 0
        for keyword in keywords:
            signature = _signature(keyword, positions)
            if signature in seen:
                count += 1
            seen[signature] = True
        return count

    current = collisions(chosen)
    while current > 0 and len(chosen) < MAX_POSITIONS:
        best_position = None
        best_count = current
        for candidate in candidates:
            if candidate in chosen:
                continue
            count = collisions(chosen + [candidate])
            if count < best_count:
                best_count = count
                best_position = candidate
        if best_position is None:
            break  # No position helps further (duplicate keywords).
        chosen.append(best_position)
        current = best_count
    return chosen


def generate(keywords: Sequence[bytes]) -> GperfFunction:
    """Generate a gperf-style hash for a closed keyword set.

    The association search starts at zero and repairs collisions by
    bumping the association value of a character that distinguishes the
    colliding pair, gperf's classic strategy.  The search is bounded;
    like real gperf on large random inputs, the result may end up only
    *near*-perfect, trading perfection for termination.

    Raises:
        SynthesisError: when called with no keywords.
    """
    unique_keywords = tuple(dict.fromkeys(bytes(k) for k in keywords))
    if not unique_keywords:
        raise SynthesisError("gperf generation requires at least one keyword")
    positions = tuple(_select_positions(unique_keywords))
    asso = [0] * 256

    def hash_with(asso_table: List[int], key: bytes) -> int:
        value = len(key)
        for position in positions:
            index = position if position >= 0 else len(key) - 1
            if index < len(key):
                value += asso_table[key[index]]
        return value

    step = max(1, len(unique_keywords) // 20)
    for _round in range(MAX_REPAIR_ROUNDS):
        buckets = {}
        collision = None
        for keyword in unique_keywords:
            value = hash_with(asso, keyword)
            if value in buckets:
                collision = (buckets[value], keyword)
                break
            buckets[value] = keyword
        if collision is None:
            break
        first, second = collision
        # Bump the association of a character where the two keys differ.
        for position in itertools.chain(positions, [-1]):
            index_a = position if position >= 0 else len(first) - 1
            index_b = position if position >= 0 else len(second) - 1
            byte_a = first[index_a] if index_a < len(first) else None
            byte_b = second[index_b] if index_b < len(second) else None
            if byte_a != byte_b and byte_b is not None:
                asso[byte_b] += step
                break
        else:
            # Keys agree at every selected position; only length separates
            # them (or nothing does) — bump a shared character anyway.
            if second:
                asso[second[0]] += step

    table_size = (
        max(hash_with(asso, keyword) for keyword in unique_keywords) + 1
    )
    return GperfFunction(
        positions=positions,
        asso=tuple(asso),
        table_size=table_size,
        keywords=unique_keywords,
    )


def generate_from_strings(keywords: Sequence[str]) -> GperfFunction:
    """Convenience wrapper accepting ``str`` keywords."""
    return generate([keyword.encode("utf-8") for keyword in keywords])

"""Polymur-style universal hash (the paper's Figure 2 motivation).

The paper quotes Polymur as an example of *handwritten* length
specialization: its entry point branches on ``len <= 7``, ``len >= 50``
and ``len >= 8`` before hashing.  We reproduce that structure — a
polynomial hash over GF(2^61 - 1) with per-length-class processing — so
the repository contains the motivating artifact, not just the citation.

This is a structural port, not a bit-exact one: Polymur's published
parameter-generation procedure needs its exact PRNG to match digests,
which is out of scope.  What matters for the paper's argument (Example
2.2) is the shape: three length specializations inside a general hash.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.bits import MASK64

POLYMUR_P611 = (1 << 61) - 1
"""The Mersenne prime 2^61 - 1 the polynomial is evaluated over."""

POLYMUR_ARBITRARY1 = 0x6A09E667F3BCC908
POLYMUR_ARBITRARY2 = 0xBB67AE8584CAA73B
POLYMUR_ARBITRARY3 = 0x3C6EF372FE94F82B
POLYMUR_ARBITRARY4 = 0xA54FF53A5F1D36F1


def _reduce611(value: int) -> int:
    """Full reduction modulo 2^61 - 1 (two folds plus a subtract)."""
    value = (value & POLYMUR_P611) + (value >> 61)
    value = (value & POLYMUR_P611) + (value >> 61)
    if value >= POLYMUR_P611:
        value -= POLYMUR_P611
    return value


@dataclass(frozen=True)
class PolymurParams:
    """The per-instance secrets ``k``, ``k2``, ``s`` of Polymur."""

    k: int
    k2: int
    s: int

    @staticmethod
    def from_seed(seed: int) -> "PolymurParams":
        """Derive parameters deterministically from a 64-bit seed."""
        k = _reduce611((seed * POLYMUR_ARBITRARY1) & MASK64) | 1
        k2 = _reduce611((seed ^ POLYMUR_ARBITRARY2) * POLYMUR_ARBITRARY3 & MASK64) | 1
        s = (seed + POLYMUR_ARBITRARY4) & MASK64
        return PolymurParams(k=k, k2=k2, s=s)


DEFAULT_PARAMS = PolymurParams.from_seed(0xFEDCBA9876543210)


def polymur_hash(
    key: bytes, params: PolymurParams = DEFAULT_PARAMS, tweak: int = 0
) -> int:
    """Hash ``key`` with the three length specializations of Figure 2.

    - ``len <= 7``: a single partial load, one multiply.
    - ``8 <= len < 50``: 7-byte chunks into the polynomial.
    - ``len >= 50``: wider strides with a second key power, the "long
      input" path.
    """
    length = len(key)
    k, k2, s = params.k, params.k2, params.s
    if length <= 7:
        # Figure 2, line 8: the short-input specialization.
        data = int.from_bytes(key, "little") if key else 0
        mixed = _reduce611((data ^ s) * k + length)
        return _finish(mixed, s)
    if length >= 50:
        # Figure 2, line 9: the long-input specialization processes two
        # interleaved polynomials over 14-byte strides.
        acc1 = tweak & POLYMUR_P611
        acc2 = length & POLYMUR_P611
        offset = 0
        while offset + 14 <= length:
            chunk1 = int.from_bytes(key[offset : offset + 7], "little")
            chunk2 = int.from_bytes(key[offset + 7 : offset + 14], "little")
            acc1 = _reduce611(acc1 * k + chunk1)
            acc2 = _reduce611(acc2 * k2 + chunk2)
            offset += 14
        if offset < length:
            tail = int.from_bytes(key[offset:], "little")
            acc1 = _reduce611(acc1 * k + tail)
        return _finish(_reduce611(acc1 * k2 + acc2), s)
    # Figure 2, line 10: the medium-length path, 7-byte chunks.
    acc = (length ^ tweak) & POLYMUR_P611
    offset = 0
    while offset + 7 <= length:
        chunk = int.from_bytes(key[offset : offset + 7], "little")
        acc = _reduce611(acc * k + chunk)
        offset += 7
    if offset < length:
        tail = int.from_bytes(key[offset:], "little")
        acc = _reduce611(acc * k + tail)
    return _finish(acc, s)


def _finish(acc: int, s: int) -> int:
    """Final avalanche: xor the secret and murmur-style mix."""
    value = (acc ^ s) & MASK64
    value = (value ^ (value >> 33)) * 0xFF51AFD7ED558CCD & MASK64
    value = (value ^ (value >> 33)) * 0xC4CEB9FE1A85EC53 & MASK64
    return value ^ (value >> 33)

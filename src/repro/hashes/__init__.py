"""Baseline hash functions the paper compares against, built from scratch.

Every baseline of Section 4 is implemented here as a pure-Python port:

- :mod:`repro.hashes.murmur_stl` — **STL**: libstdc++'s murmur-derived
  ``_Hash_bytes`` (the paper's Figure 1), the default ``std::hash`` for
  strings.
- :mod:`repro.hashes.fnv` — **FNV**: libstdc++'s ``_Fnv_hash_bytes``.
- :mod:`repro.hashes.city` — **City**: Google's CityHash64.
- :mod:`repro.hashes.abseil` — **Abseil**: the wyhash-derived low-level
  hash used by ``absl::Hash``.
- :mod:`repro.hashes.polymur` — Polymur (the paper's Figure 2 motivation).
- :mod:`repro.hashes.gpt` — **Gpt**: per-format hashes following the
  paper's ChatGPT prompt recipe (unrolled, separators skipped).
- :mod:`repro.hashes.gperf` — **Gperf**: a perfect-hash generator in the
  style of GNU gperf, reproducing its failure mode on open key sets.

All functions share the signature ``(key: bytes) -> int`` and return
64-bit values; :mod:`repro.hashes.registry` exposes them by the names used
in the paper's tables.
"""

from repro.hashes.abseil import abseil_low_level_hash
from repro.hashes.city import city_hash64
from repro.hashes.fnv import fnv1a_64
from repro.hashes.murmur_stl import stl_hash_bytes
from repro.hashes.polymur import polymur_hash
from repro.hashes.registry import (
    BASELINE_NAMES,
    NamedHash,
    baseline_hashes,
    get_hash,
)

__all__ = [
    "BASELINE_NAMES",
    "NamedHash",
    "abseil_low_level_hash",
    "baseline_hashes",
    "city_hash64",
    "fnv1a_64",
    "get_hash",
    "polymur_hash",
    "stl_hash_bytes",
]

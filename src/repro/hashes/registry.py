"""Registry of hash functions under the names the paper's tables use.

Benchmarks and examples look functions up here so every table and figure
uses consistent naming: ``STL``, ``Abseil``, ``City``, ``FNV`` for the
library baselines, ``Gpt``/``Gperf`` for the generated baselines (these
are per-format or per-keyset and need a factory), and ``Naive``,
``OffXor``, ``Aes``, ``Pext`` for the synthetic families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.hashes.abseil import abseil_low_level_hash
from repro.hashes.city import city_hash64
from repro.hashes.fnv import fnv1a_64
from repro.hashes.murmur_stl import stl_hash_bytes
from repro.hashes.polymur import polymur_hash

HashCallable = Callable[[bytes], int]


@dataclass(frozen=True)
class NamedHash:
    """A hash function with its paper name and provenance note."""

    name: str
    function: HashCallable
    description: str

    def __call__(self, key: bytes) -> int:
        return self.function(key)


_BASELINES: Dict[str, NamedHash] = {
    "STL": NamedHash(
        "STL",
        stl_hash_bytes,
        "libstdc++ murmur-derived _Hash_bytes (paper Figure 1)",
    ),
    "FNV": NamedHash(
        "FNV",
        fnv1a_64,
        "libstdc++ _Fnv_hash_bytes (64-bit FNV-1a)",
    ),
    "City": NamedHash(
        "City",
        city_hash64,
        "Google CityHash64 (Abseil's string hash)",
    ),
    "Abseil": NamedHash(
        "Abseil",
        abseil_low_level_hash,
        "Abseil low-level hash (wyhash-derived)",
    ),
    "Polymur": NamedHash(
        "Polymur",
        polymur_hash,
        "Polymur-style universal hash (paper Figure 2)",
    ),
}

BASELINE_NAMES: List[str] = ["Abseil", "City", "FNV", "STL"]
"""The four library baselines of Table 1, in its alphabetical order."""


def baseline_hashes() -> Dict[str, NamedHash]:
    """All registered baseline functions, keyed by paper name."""
    return dict(_BASELINES)


def get_hash(name: str) -> NamedHash:
    """Look up a baseline by paper name (case-insensitive).

    Raises:
        KeyError: with the known names listed, for typo-friendly errors.
    """
    for key, value in _BASELINES.items():
        if key.lower() == name.lower():
            return value
    known = ", ".join(sorted(_BASELINES))
    raise KeyError(f"unknown hash {name!r}; known baselines: {known}")

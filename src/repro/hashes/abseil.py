"""Abseil's low-level hash, the paper's **Abseil** baseline.

A port of ``absl/hash/internal/low_level_hash.cc``: the wyhash-derived
mixer behind ``absl::Hash`` for string types.  The core operation is
``Mix`` — a 64x64→128-bit multiply folded by xoring its halves — applied
over 64-byte chunks (two independent lanes), then 16-byte chunks, then a
length-dependent tail.  Salts are the published wyhash constants.

As with :mod:`repro.hashes.city`, upstream digests cannot be diffed
offline; tests pin structure and statistical quality.
"""

from __future__ import annotations

from repro.isa.bits import MASK64

SALT = (
    0xA0761D6478BD642F,
    0xE7037ED1A0B428DB,
    0x8EBC6AF09C88C6E3,
    0x589965CC75374CC3,
    0x1D8E4E27C47D124F,
)
"""The five 64-bit salts (wyhash's published constants)."""

DEFAULT_SEED = 0x9E3779B97F4A7C15
"""Default seed: the 64-bit golden ratio, standing in for abseil's
process-randomized seed (fixed so runs are reproducible)."""


def _mix(a: int, b: int) -> int:
    product = (a & MASK64) * (b & MASK64)
    return (product & MASK64) ^ (product >> 64)


def _fetch64(data: bytes, offset: int) -> int:
    return int.from_bytes(data[offset : offset + 8], "little")


def _fetch32(data: bytes, offset: int) -> int:
    return int.from_bytes(data[offset : offset + 4], "little")


def abseil_low_level_hash(key: bytes, seed: int = DEFAULT_SEED) -> int:
    """Hash ``key`` with the Abseil low-level hash.

    >>> abseil_low_level_hash(b"x") != abseil_low_level_hash(b"y")
    True
    """
    length = len(key)
    starting_length = length
    state = (seed ^ SALT[0]) & MASK64
    offset = 0

    if length > 64:
        duplicated = state
        while length > 64:
            a = _fetch64(key, offset)
            b = _fetch64(key, offset + 8)
            c = _fetch64(key, offset + 16)
            d = _fetch64(key, offset + 24)
            e = _fetch64(key, offset + 32)
            f = _fetch64(key, offset + 40)
            g = _fetch64(key, offset + 48)
            h = _fetch64(key, offset + 56)
            cs0 = _mix(a ^ SALT[1], b ^ state)
            cs1 = _mix(c ^ SALT[2], d ^ state)
            state = cs0 ^ cs1
            ds0 = _mix(e ^ SALT[3], f ^ duplicated)
            ds1 = _mix(g ^ SALT[4], h ^ duplicated)
            duplicated = ds0 ^ ds1
            offset += 64
            length -= 64
        state ^= duplicated

    while length > 16:
        a = _fetch64(key, offset)
        b = _fetch64(key, offset + 8)
        state = _mix(a ^ SALT[1], b ^ state)
        offset += 16
        length -= 16

    if length > 8:
        a = _fetch64(key, offset)
        b = _fetch64(key, offset + length - 8)
    elif length > 3:
        a = _fetch32(key, offset)
        b = _fetch32(key, offset + length - 4)
    elif length > 0:
        a = (key[offset] << 16) | (key[offset + length // 2] << 8) | key[
            offset + length - 1
        ]
        b = 0
    else:
        a = 0
        b = 0

    w = _mix(a ^ SALT[1], b ^ state)
    z = SALT[1] ^ starting_length
    return _mix(w, z)

"""FNV-1a, the paper's **FNV** baseline (libstdc++ ``_Fnv_hash_bytes``).

The 64-bit Fowler-Noll-Vo variant: xor each byte into the hash, then
multiply by the FNV prime.  libstdc++ ships this next to the murmur
implementation of Figure 1 (``hash_bytes.cc``, line 123).
"""

from __future__ import annotations

from repro.isa.bits import MASK64

FNV_PRIME_64 = 1099511628211
"""The 64-bit FNV prime (2^40 + 2^8 + 0xb3)."""

FNV_OFFSET_BASIS_64 = 14695981039346656037
"""The 64-bit FNV offset basis."""


def fnv1a_64(key: bytes, seed: int = FNV_OFFSET_BASIS_64) -> int:
    """Hash ``key`` with 64-bit FNV-1a.

    >>> fnv1a_64(b"") == FNV_OFFSET_BASIS_64
    True
    >>> hex(fnv1a_64(b"a"))
    '0xaf63dc4c8601ec8c'
    """
    hash_value = seed
    for byte in key:
        hash_value ^= byte
        hash_value = (hash_value * FNV_PRIME_64) & MASK64
    return hash_value


def fnv1_64(key: bytes, seed: int = FNV_OFFSET_BASIS_64) -> int:
    """The multiply-first FNV-1 variant, kept for completeness.

    libstdc++'s ``_Fnv_hash_bytes`` is the 1a (xor-first) variant above;
    some older callers use FNV-1.
    """
    hash_value = seed
    for byte in key:
        hash_value = (hash_value * FNV_PRIME_64) & MASK64
        hash_value ^= byte
    return hash_value

"""Distinguishing-bit search for closed key sets.

The perfect tier's core question: which subset of the format's *live*
variable bits (the verifier's :func:`repro.verify.bit_report`, dead
lanes excluded) separates every key in the closed set?  Any such subset,
pext-packed into disjoint bottom-aligned lanes, is a collision-free hash
over the set by construction.

Two stages, in the spirit of PAPERS.md's SAT-based minimal-perfect-hash
construction but budgeted rather than complete:

1. **Greedy partition refinement** — repeatedly add the candidate bit
   that splits the most colliding signature groups, gperf's position
   search lifted from bytes to bits.  Fast, and usually lands within a
   bit or two of the information-theoretic floor ``ceil(log2 N)``.
2. **Budgeted exhaustive fallback** — when the greedy pick is above the
   floor, enumerate subsets of a ranked candidate pool from the floor
   upward (the CSP-style search), stopping at the first separating
   subset or when the evaluation budget runs dry; failing that, a
   drop-one local minimization pass tightens the greedy set.

Every signature evaluation is charged against a :class:`SearchBudget`,
so adversarial sets degrade to "best found so far", never to an
unbounded search.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from math import comb, ceil, log2
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PerfectSearchError

__all__ = [
    "SearchBudget",
    "SearchOutcome",
    "select_distinguishing_bits",
]

MAX_HASH_BITS = 64
"""A selection wider than the accumulator cannot pack injectively."""


@dataclass
class SearchBudget:
    """Caps on the distinguishing-bit search.

    Attributes:
        max_evaluations: total per-key signature evaluations across all
            stages; the search degrades gracefully when it runs out.
        exhaustive_limit: subsets enumerated per target size in the
            exhaustive stage (on top of the evaluation cap).
        max_pool: candidate bits the exhaustive stage considers — the
            greedy-chosen bits first, then the best remaining ones.
    """

    max_evaluations: int = 2_000_000
    exhaustive_limit: int = 50_000
    max_pool: int = 20

    evaluations: int = field(default=0, repr=False)

    def charge(self, amount: int) -> bool:
        """Consume budget; False once the evaluation cap is exceeded."""
        self.evaluations += amount
        return self.evaluations <= self.max_evaluations

    @property
    def exhausted(self) -> bool:
        return self.evaluations > self.max_evaluations


@dataclass(frozen=True)
class SearchOutcome:
    """What the search settled on.

    Attributes:
        bits: selected key-bit indices (``byte * 8 + bit``), ascending.
        strategy: ``greedy`` | ``exhaustive`` | ``greedy+minimized``.
        evaluations: budget consumed (per-key signature evaluations).
        floor: the information-theoretic minimum ``ceil(log2 N)``.
        exhausted: the budget ran out before minimization finished.
    """

    bits: Tuple[int, ...]
    strategy: str
    evaluations: int
    floor: int
    exhausted: bool

    @property
    def minimal_count(self) -> bool:
        """Selection size hit the information-theoretic floor."""
        return len(self.bits) <= self.floor


def _bit_columns(
    keys: Sequence[bytes], pool: Sequence[int]
) -> Dict[int, Tuple[int, ...]]:
    """Per-candidate-bit value columns over the key set."""
    columns: Dict[int, Tuple[int, ...]] = {}
    for bit in pool:
        byte, offset = divmod(bit, 8)
        columns[bit] = tuple((key[byte] >> offset) & 1 for key in keys)
    return columns


def _separates(
    subset: Sequence[int],
    columns: Dict[int, Tuple[int, ...]],
    extra: Optional[Sequence],
    count: int,
) -> bool:
    """Do the subset's projections (plus extras) distinguish all keys?"""
    seen = set()
    cols = [columns[bit] for bit in subset]
    for index in range(count):
        signature = tuple(col[index] for col in cols)
        if extra is not None:
            signature = (extra[index],) + signature
        if signature in seen:
            return False
        seen.add(signature)
    return True


def _greedy(
    keys: Sequence[bytes],
    pool: Sequence[int],
    columns: Dict[int, Tuple[int, ...]],
    extra: Optional[Sequence],
    budget: SearchBudget,
) -> Optional[List[int]]:
    """Partition refinement: grow the subset until every group is a
    singleton, picking the bit that leaves the fewest excess collisions.

    Returns ``None`` when no candidate bit splits the remaining groups
    (keys identical on every pool bit) or the budget runs out first.
    """
    # Groups holding >1 key, as lists of key indices; singletons leave.
    if extra is None:
        groups: List[List[int]] = [list(range(len(keys)))]
    else:
        by_extra: Dict = {}
        for index, symbol in enumerate(extra):
            by_extra.setdefault(symbol, []).append(index)
        groups = [group for group in by_extra.values() if len(group) > 1]
    chosen: List[int] = []
    available = list(pool)
    while groups:
        colliding = sum(len(group) for group in groups)
        best_bit = None
        best_excess = colliding - len(groups)  # current excess collisions
        best_split: List[List[int]] = []
        for bit in available:
            if not budget.charge(colliding):
                return None
            column = columns[bit]
            excess = 0
            split: List[List[int]] = []
            for group in groups:
                zeros = [i for i in group if not column[i]]
                ones_count = len(group) - len(zeros)
                if len(zeros) > 1:
                    excess += len(zeros) - 1
                    split.append(zeros)
                if ones_count > 1:
                    ones = [i for i in group if column[i]]
                    excess += ones_count - 1
                    split.append(ones)
            if excess < best_excess:
                best_excess = excess
                best_bit = bit
                best_split = split
                if excess == 0:
                    break
        if best_bit is None:
            return None  # No bit makes progress: keys indistinguishable.
        chosen.append(best_bit)
        available.remove(best_bit)
        groups = best_split
        if len(chosen) > MAX_HASH_BITS:
            return None
    return chosen


def _exhaustive(
    chosen: List[int],
    pool: Sequence[int],
    columns: Dict[int, Tuple[int, ...]],
    extra: Optional[Sequence],
    count: int,
    floor: int,
    budget: SearchBudget,
) -> Optional[List[int]]:
    """Enumerate subsets below the greedy size, smallest first.

    The candidate pool is the greedy selection followed by the remaining
    live bits (capped at ``budget.max_pool``); within the budget this is
    a complete search over that pool, so a hit is genuinely minimal for
    the sizes it finished.
    """
    ranked = chosen + [bit for bit in pool if bit not in chosen]
    ranked = ranked[: budget.max_pool]
    for size in range(max(floor, 1), len(chosen)):
        if comb(len(ranked), size) > budget.exhaustive_limit:
            # This size alone would blow the enumeration cap; larger
            # sizes only get worse.
            return None
        for subset in itertools.islice(
            itertools.combinations(ranked, size), budget.exhaustive_limit
        ):
            if not budget.charge(count):
                return None
            if _separates(subset, columns, extra, count):
                return list(subset)
    return None


def _minimize(
    chosen: List[int],
    columns: Dict[int, Tuple[int, ...]],
    extra: Optional[Sequence],
    count: int,
    budget: SearchBudget,
) -> Tuple[List[int], bool]:
    """Drop-one local minimization of a separating subset."""
    kept = list(chosen)
    shrunk = False
    for bit in reversed(chosen):
        if len(kept) <= 1:
            break
        candidate = [b for b in kept if b != bit]
        if not budget.charge(count):
            break
        if _separates(candidate, columns, extra, count):
            kept = candidate
            shrunk = True
    return kept, shrunk


def select_distinguishing_bits(
    keys: Sequence[bytes],
    pool: Sequence[int],
    extra: Optional[Sequence] = None,
    budget: Optional[SearchBudget] = None,
) -> SearchOutcome:
    """Pick a small bit subset separating every key in the closed set.

    Args:
        keys: the closed key set (distinct; every key long enough to
            index every pool bit).
        pool: candidate key-bit indices — callers pass the verifier's
            *live* bits so constant bytes and dead lanes never enter.
        extra: optional per-key auxiliary symbols (length, tail fold for
            variable-length formats) that distinguish for free.
        budget: search caps; a default :class:`SearchBudget` when None.

    Raises:
        PerfectSearchError: when no subset of at most 64 pool bits
            separates the keys (or the budget dies before finding one).
    """
    budget = budget if budget is not None else SearchBudget()
    count = len(keys)
    floor = ceil(log2(count)) if count > 1 else 0
    columns = _bit_columns(keys, pool)
    if count <= 1:
        return SearchOutcome((), "greedy", budget.evaluations, floor, False)
    chosen = _greedy(keys, pool, columns, extra, budget)
    if chosen is None:
        detail = (
            "search budget exhausted"
            if budget.exhausted
            else f"no subset of the {len(pool)} live bit(s) separates "
            f"the {count} keys"
        )
        raise PerfectSearchError(
            f"cannot select distinguishing bits: {detail}"
        )
    strategy = "greedy"
    if len(chosen) > floor:
        smaller = _exhaustive(
            chosen, pool, columns, extra, count, floor, budget
        )
        if smaller is not None:
            chosen = smaller
            strategy = "exhaustive"
        else:
            chosen, shrunk = _minimize(chosen, columns, extra, count, budget)
            if shrunk:
                strategy = "greedy+minimized"
    return SearchOutcome(
        bits=tuple(sorted(chosen)),
        strategy=strategy,
        evaluations=budget.evaluations,
        floor=floor,
        exhausted=budget.exhausted,
    )

"""``synthesize_perfect``: collision-free hashes for closed key sets.

The pipeline mirrors ordinary synthesis — pattern, plan, IR, compiled
callable — but the plan is *searched*, not derived: seed the candidate
pool from the verifier's live-bit report (constant bytes and dead lanes
never enter), select a distinguishing subset
(:mod:`repro.perfect.search`), pext-pack it into disjoint bottom-aligned
lanes, and exhaustively certify the result
(:mod:`repro.perfect.certificate`).  The emitted
:class:`~repro.core.plan.SynthesisPlan` is ordinary in every respect —
it flows through the interpreter, both backends, the NumPy batch
lowering, the native JIT, and the compile cache unchanged — except for
its ``perfect`` flag, which the ``perfect-claim`` lint audits.

Fallback ladder, each rung certified or refused:

1. disjoint shift-packed lanes over the selected bits (fixed length:
   structurally injective on the set; variable length: tail-fold xor
   may alias, repaired by adding split bits);
2. rotation-folded lanes over all live bits with searched rotation
   assignments (the "mixer" search) when packing cannot work;
3. refusal (:class:`~repro.errors.PerfectSearchError`) — never an
   uncertified "perfect" hash.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.codegen.cache import get_compile_cache
from repro.core.analysis import analyze_fixed_loads, analyze_variable_loads
from repro.core.inference import infer_pattern
from repro.core.masks import extraction_masks, fold_rotations
from repro.core.pattern import KeyPattern
from repro.core.plan import (
    CombineOp,
    HashFamily,
    LoadOp,
    SkipTable,
    SynthesisPlan,
)
from repro.core.regex_expand import pattern_from_regex
from repro.core.regex_render import render_regex
from repro.core.synthesis import (
    SynthesizedHash,
    VERIFY_MODES,
    build_plan,
)
from repro.errors import PerfectSearchError, SynthesisError
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.perfect.certificate import (
    PerfectCertificate,
    certify,
    evaluate_plan,
)
from repro.perfect.search import (
    MAX_HASH_BITS,
    SearchBudget,
    SearchOutcome,
    select_distinguishing_bits,
)
from repro.verify.bit_report import bit_report

__all__ = ["PerfectHash", "synthesize_perfect"]

KeyLike = Union[bytes, str]

ROTATION_ATTEMPTS = 64
"""Seeded rotation assignments tried in the mixer fallback."""

REPAIR_ROUNDS = 16
"""Bound on add-a-bit repair iterations for tail-fold aliasing."""


@dataclass
class PerfectHash(SynthesizedHash):
    """A synthesized hash certified collision-free on its closed set.

    Everything a :class:`~repro.core.synthesis.SynthesizedHash` is —
    callable, batchable, native-JIT-able — plus the
    :class:`~repro.perfect.certificate.PerfectCertificate` binding it to
    the key set it was searched for.  Containers consult the
    certificate to engage their no-collision fast path.
    """

    certificate: Optional[PerfectCertificate] = field(
        default=None, compare=False
    )

    def __repr__(self) -> str:
        cert = self.certificate
        detail = (
            f"keys={cert.key_count}, hash_bits={cert.hash_bits}, "
            f"load_factor={cert.load_factor:.3g}"
            if cert is not None
            else "uncertified"
        )
        return (
            f"PerfectHash(format={self.plan.pattern_regex!r}, {detail})"
        )

    @property
    def container_function(self):
        """The bare compiled callable with the certificate attached.

        What you hand to ``UnorderedSet(..., perfect=True)``: the
        container validates the certificate at construction but calls
        the hash on every lookup, so the fast path should not pay the
        dataclass ``__call__`` indirection per key.
        """
        function = self.function
        function.certificate = self.certificate
        return function


def _normalize_keys(keys: Iterable[KeyLike]) -> List[bytes]:
    encoded = [
        key.encode("utf-8") if isinstance(key, str) else bytes(key)
        for key in keys
    ]
    deduped = list(dict.fromkeys(encoded))
    if not deduped:
        raise SynthesisError(
            "perfect synthesis requires at least one key"
        )
    return deduped


def _resolve_format(
    keys: Sequence[bytes], source: Optional[Union[str, KeyPattern]]
) -> KeyPattern:
    if source is None:
        pattern = infer_pattern(keys)
    elif isinstance(source, KeyPattern):
        pattern = source
    elif isinstance(source, str):
        pattern = pattern_from_regex(source)
    else:
        raise TypeError(
            f"format must be a regex string or KeyPattern, "
            f"got {type(source).__name__}"
        )
    for key in keys:
        if not pattern.matches(key):
            raise SynthesisError(
                f"key {key!r} does not match the format "
                f"{render_regex(pattern)!r}; a perfect hash is only "
                f"meaningful over conforming keys"
            )
    return pattern


def _tail_fold(key: bytes, start: int) -> int:
    """The exact value ``tail_xor`` folds in for this key (interp.py)."""
    acc = 0
    position = start
    length = len(key)
    while position + 8 <= length:
        acc ^= int.from_bytes(key[position : position + 8], "little")
        position += 8
    if position < length:
        acc ^= int.from_bytes(key[position:length], "little")
    return acc


def _structured_layout(
    pattern: KeyPattern,
) -> Tuple[List[int], Optional[SkipTable]]:
    if pattern.is_fixed_length:
        return analyze_fixed_loads(pattern), None
    table, offsets = analyze_variable_loads(pattern)
    return offsets, table


def _selected_masks(
    pattern: KeyPattern, offsets: List[int], bits: Sequence[int]
) -> List[int]:
    """Per-word pext masks restricted to the selected bits.

    The full extraction masks assign each variable bit to exactly one
    word (the trailing-overlap rule), so intersecting them with the
    selection keeps every selected bit extracted exactly once.
    """
    wanted = set(bits)
    full = extraction_masks(pattern, offsets)
    masks: List[int] = []
    for offset, mask in zip(offsets, full):
        selected = 0
        remaining = mask
        while remaining:
            low = remaining & -remaining
            local = low.bit_length() - 1
            if offset * 8 + local in wanted:
                selected |= low
            remaining ^= low
        masks.append(selected)
    return masks


def _packed_plan(
    pattern: KeyPattern,
    regex: str,
    bits: Sequence[int],
    final_mix: bool,
) -> SynthesisPlan:
    """Disjoint bottom-packed lanes over the selected bits (rung 1).

    Unlike the standard Pext packing, the last lane is *not* pushed to
    the top of the word: keeping the pack bottom-aligned keeps every
    hash value below ``2**len(bits)``, which is what makes the range
    (and thus minimality / load factor) claimable.
    """
    offsets, table = _structured_layout(pattern)
    masks = _selected_masks(pattern, offsets, bits)
    loads: List[LoadOp] = []
    cumulative = 0
    for offset, mask in zip(offsets, masks):
        if not mask:
            continue
        loads.append(LoadOp(offset, mask=mask, shift=cumulative))
        cumulative += bin(mask).count("1")
    if cumulative != len(set(bits)):
        raise PerfectSearchError(
            f"selected bits escaped the extraction masks "
            f"({cumulative} packed != {len(set(bits))} selected)"
        )
    if not loads:
        raise PerfectSearchError(
            "no selected bits to pack (empty selection)"
        )
    covers_all = pattern.is_fixed_length and cumulative == sum(
        bin(mask).count("1") for mask in extraction_masks(pattern, offsets)
    )
    return SynthesisPlan(
        family=HashFamily.PEXT,
        key_length=pattern.body_length if pattern.is_fixed_length else None,
        loads=tuple(loads),
        skip_table=table,
        combine=CombineOp.OR,
        total_variable_bits=pattern.variable_bit_count(),
        bijective=covers_all and cumulative <= MAX_HASH_BITS,
        pattern_regex=regex,
        final_mix=final_mix,
        perfect=True,
    )


def _rotation_plan(
    pattern: KeyPattern,
    regex: str,
    rotations: Sequence[int],
    final_mix: bool,
) -> SynthesisPlan:
    """Rotation-folded lanes over *all* live bits (rung 2, the mixer)."""
    offsets, table = _structured_layout(pattern)
    masks = extraction_masks(pattern, offsets)
    pairs = [
        (offset, mask)
        for offset, mask in zip(offsets, masks)
        if mask
    ]
    loads = tuple(
        LoadOp(offset, mask=mask, rotate=rotation % 64)
        for (offset, mask), rotation in zip(pairs, rotations)
    )
    if not loads:
        raise PerfectSearchError("format has no variable bits to fold")
    return SynthesisPlan(
        family=HashFamily.PEXT,
        key_length=pattern.body_length if pattern.is_fixed_length else None,
        loads=loads,
        skip_table=table,
        combine=CombineOp.XOR,
        total_variable_bits=pattern.variable_bit_count(),
        bijective=False,
        pattern_regex=regex,
        final_mix=final_mix,
        perfect=True,
    )


def _collisions(plan: SynthesisPlan, keys: Sequence[bytes]) -> List[List[int]]:
    """Groups of key indices sharing a hash value (len > 1 only)."""
    groups: Dict[int, List[int]] = {}
    for index, value in enumerate(evaluate_plan(plan, keys)):
        groups.setdefault(value, []).append(index)
    return [group for group in groups.values() if len(group) > 1]


def _repair_bits(
    keys: Sequence[bytes],
    colliding: List[List[int]],
    pool: Sequence[int],
    used: Sequence[int],
) -> Optional[int]:
    """One unused pool bit that splits at least one colliding group."""
    used_set = set(used)
    for bit in pool:
        if bit in used_set:
            continue
        byte, offset = divmod(bit, 8)
        for group in colliding:
            values = {(keys[i][byte] >> offset) & 1 for i in group}
            if len(values) > 1:
                return bit
    return None


def _search_rotation_fallback(
    pattern: KeyPattern,
    regex: str,
    keys: Sequence[bytes],
    final_mix: bool,
    reasons: List[str],
) -> Optional[SynthesisPlan]:
    """Try seeded rotation assignments until one is collision-free."""
    offsets, _table = _structured_layout(pattern)
    masks = [mask for mask in extraction_masks(pattern, offsets) if mask]
    if not masks:
        return None
    counts = [bin(mask).count("1") for mask in masks]
    rng = random.Random(0x5E9E)
    base = fold_rotations(counts)
    for attempt in range(ROTATION_ATTEMPTS):
        rotations = (
            base
            if attempt == 0
            else [rng.randrange(64) for _ in counts]
        )
        try:
            plan = _rotation_plan(pattern, regex, rotations, final_mix)
        except PerfectSearchError:
            return None
        if not _collisions(plan, keys):
            return plan
    reasons.append(
        f"no collision-free rotation assignment in "
        f"{ROTATION_ATTEMPTS} attempts"
    )
    return None


def synthesize_perfect(
    keys: Iterable[KeyLike],
    format: Optional[Union[str, KeyPattern]] = None,
    name: Optional[str] = None,
    final_mix: bool = False,
    budget: Optional[SearchBudget] = None,
    verify: Optional[str] = None,
) -> PerfectHash:
    """Synthesize a hash certified collision-free on a closed key set.

    Args:
        keys: the closed set (``bytes`` or UTF-8 ``str``); duplicates
            are dropped.
        format: optional format regex or :class:`KeyPattern`; inferred
            from the keys when omitted.  Every key must conform.
        name: generated function name.
        final_mix: append the murmur finalizer.  The finalizer is a
            64-bit bijection, so perfection is preserved — but the
            compact range (``hash_bits``) is given up for distribution.
        budget: :class:`~repro.perfect.search.SearchBudget` caps.
        verify: like ``synthesize(verify=...)`` — ``"warn"``/"strict"``
            run the static verifier (including the ``perfect-claim``
            lint) over the emitted plan.

    Raises:
        SynthesisError: empty/ill-formatted input, or a body below 8
            bytes (pad the keys; see :func:`repro.perfect.pad_keys`).
        PerfectSearchError: no certifiable plan within the budget.
    """
    if verify not in VERIFY_MODES:
        raise ValueError(
            f"verify must be one of {VERIFY_MODES}, got {verify!r}"
        )
    started = time.perf_counter()
    registry = get_registry()
    key_list = _normalize_keys(keys)
    with span("perfect.synthesize", keys=len(key_list)) as synth_span:
        registry.counter("perfect.synthesized").inc()
        try:
            pattern = _resolve_format(key_list, format)
            if pattern.body_length < 8:
                raise SynthesisError(
                    f"key body of {pattern.body_length} bytes is below "
                    f"one machine word (paper footnote 5); pad the keys "
                    f"to at least 8 bytes (repro.perfect.pad_keys)"
                )
            regex = render_regex(pattern)
            plan, outcome = _search_plan(
                pattern, regex, key_list, final_mix, budget
            )
        except (SynthesisError, PerfectSearchError):
            registry.counter("perfect.refused").inc()
            raise
        function_name = name or "sepe_perfect_hash"
        artifact = get_compile_cache().scalar(plan, name=function_name)
        certificate = certify(
            plan,
            key_list,
            strategy=outcome.strategy,
            selected_bits=outcome.bits,
            evaluations=outcome.evaluations,
            fallback_used=outcome.strategy == "rotation-mixer",
            compiled=artifact.function,
        )
        if not certificate.certified:
            registry.counter("perfect.refused").inc()
            raise PerfectSearchError(
                "certification refused the searched plan: "
                + "; ".join(certificate.reasons)
            )
        registry.counter("perfect.certified").inc()
        synth_span.annotate("hash_bits", certificate.hash_bits)
        synth_span.annotate("strategy", certificate.strategy)
        report = None
        if verify:
            from repro.core.synthesis import _verify_synthesis

            report = _verify_synthesis(plan, pattern, verify)
    elapsed = time.perf_counter() - started
    return PerfectHash(
        family=HashFamily.PEXT,
        pattern=pattern,
        plan=plan,
        python_source=artifact.source,
        synthesis_seconds=elapsed,
        _callable=artifact.function,
        name=function_name,
        verification=report,
        certificate=certificate,
    )


def _search_plan(
    pattern: KeyPattern,
    regex: str,
    keys: List[bytes],
    final_mix: bool,
    budget: Optional[SearchBudget],
) -> Tuple[SynthesisPlan, SearchOutcome]:
    """The fallback ladder: packed lanes → repair → rotation mixer."""
    registry = get_registry()
    with span("perfect.search", keys=len(keys)):
        baseline = build_plan(pattern, HashFamily.PEXT)
        pool = list(bit_report(baseline, pattern).live_bits)
        extra = None
        if not pattern.is_fixed_length:
            tail_start = baseline.tail_start or pattern.body_length
            extra = [
                (len(key), _tail_fold(key, tail_start)) for key in keys
            ]
        if not pool:
            # Nothing to select: a single key, or keys that differ only
            # in their variable-length tails.  The structural baseline
            # plan (which folds the tail) is the only candidate; the
            # exhaustive certification pass decides.
            plan = replace(baseline, final_mix=final_mix, perfect=True)
            outcome = SearchOutcome((), "structural", 0, 0, False)
            if _collisions(plan, keys):
                raise PerfectSearchError(
                    "keys are indistinguishable by body bits and their "
                    "tail folds collide; no perfect plan exists in this "
                    "plan vocabulary"
                )
            return plan, outcome
        reasons: List[str] = []
        try:
            outcome = select_distinguishing_bits(
                keys, pool, extra=extra, budget=budget
            )
        except PerfectSearchError as error:
            reasons.append(str(error))
            outcome = None
        if outcome is not None:
            plan = _packed_plan(pattern, regex, outcome.bits, final_mix)
            bits = list(outcome.bits)
            # Variable-length plans xor an unselected tail fold into the
            # packed lanes, which can alias across keys: repair by
            # adding split bits until the concrete evaluation is clean.
            for _round in range(REPAIR_ROUNDS):
                colliding = _collisions(plan, keys)
                if not colliding:
                    return plan, replace(
                        outcome, bits=tuple(sorted(bits))
                    )
                if len(bits) >= min(MAX_HASH_BITS, len(pool)):
                    break
                bit = _repair_bits(keys, colliding, pool, bits)
                if bit is None:
                    break
                bits.append(bit)
                plan = _packed_plan(pattern, regex, bits, final_mix)
            reasons.append(
                "packed-lane plan still collides after repair"
            )
        registry.counter("perfect.fallbacks").inc()
        plan = _search_rotation_fallback(
            pattern, regex, keys, final_mix, reasons
        )
        if plan is not None:
            return plan, SearchOutcome(
                (), "rotation-mixer", 0, 0, False
            )
        raise PerfectSearchError(
            "no certifiable perfect plan: " + "; ".join(reasons)
        )

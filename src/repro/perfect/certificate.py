"""Exhaustive certification of perfection claims.

A :class:`PerfectCertificate` is the artifact that turns "the search
thinks these lanes separate the keys" into "every key in the closed set
was evaluated and no two collided".  Certification runs the plan's IR
through the reference interpreter (the pipeline's independent oracle)
and cross-checks the compiled callable, so a codegen divergence can
never be laundered into a perfection claim.

The certificate is bound to the *set*, not the sequence: the key digest
hashes the sorted, length-prefixed keys, so any permutation of the same
closed set validates and any mutation — one key edited, one added, one
dropped — refuses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.codegen.interp import interpret
from repro.codegen.ir import build_ir, optimize
from repro.core.plan import CombineOp, SynthesisPlan
from repro.obs.trace import span

__all__ = [
    "PerfectCertificate",
    "certify",
    "key_set_digest",
    "plan_hash_bits",
    "validate_certificate",
]


def key_set_digest(keys: Sequence[bytes]) -> str:
    """Order-independent SHA-256 over the key *set*.

    Keys are deduplicated, sorted, and length-prefixed (keys may contain
    any byte, including the would-be separator), so the digest is a
    function of the set alone.
    """
    digest = hashlib.sha256()
    for key in sorted(set(keys)):
        digest.update(len(key).to_bytes(4, "little"))
        digest.update(key)
    return digest.hexdigest()


def plan_hash_bits(plan: SynthesisPlan) -> int:
    """Width of the value range the plan can produce.

    Bottom-packed OR-combined pext lanes on a fixed-length key keep the
    hash below ``2**k`` for ``k`` total extracted bits — that is the
    range a direct-index table needs.  Everything else (rotation folds,
    variable-length tail xor, the murmur finalizer) spreads over the
    full 64 bits.
    """
    if (
        plan.combine is CombineOp.OR
        and plan.is_fixed_length
        and not plan.final_mix
        and plan.loads
        and all(load.mask is not None for load in plan.loads)
    ):
        return max(
            load.shift + bin(load.mask).count("1") for load in plan.loads
        )
    return 64


@dataclass(frozen=True)
class PerfectCertificate:
    """Proof-of-evaluation that a plan is collision-free on a key set.

    Attributes:
        certified: every key evaluated, zero collisions, interpreter and
            compiled function agreed bit for bit.
        key_count: size of the (deduplicated) closed set.
        key_set_digest: order-independent SHA-256 binding the set.
        hash_bits: width of the plan's value range.
        range_size: ``2 ** hash_bits`` — the direct-index table size the
            hash supports.
        minimal: ``range_size == key_count`` (a true *minimal* perfect
            hash; rare, needs a power-of-two set at the entropy floor).
        load_factor: ``key_count / range_size``.
        distinct_values: distinct hash values observed (== key_count
            when certified).
        strategy: which search stage produced the selection.
        selected_bits: the distinguishing key-bit indices.
        evaluations: search budget consumed.
        fallback_used: the rotation-mixer fallback (not disjoint lanes)
            produced the plan.
        reasons: why certification failed (empty when certified).
    """

    certified: bool
    key_count: int
    key_set_digest: str
    hash_bits: int
    range_size: int
    minimal: bool
    load_factor: float
    distinct_values: int
    strategy: str
    selected_bits: Tuple[int, ...]
    evaluations: int
    fallback_used: bool
    reasons: Tuple[str, ...] = ()

    def covers(self, keys: Sequence[bytes]) -> bool:
        """Is ``keys`` exactly the certified closed set (any order)?"""
        return (
            len(set(keys)) == self.key_count
            and key_set_digest(keys) == self.key_set_digest
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "certified": self.certified,
            "key_count": self.key_count,
            "key_set_digest": self.key_set_digest,
            "hash_bits": self.hash_bits,
            "range_size": self.range_size,
            "minimal": self.minimal,
            "load_factor": self.load_factor,
            "distinct_values": self.distinct_values,
            "strategy": self.strategy,
            "selected_bits": list(self.selected_bits),
            "evaluations": self.evaluations,
            "fallback_used": self.fallback_used,
            "reasons": list(self.reasons),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "PerfectCertificate":
        return PerfectCertificate(
            certified=data["certified"],
            key_count=data["key_count"],
            key_set_digest=data["key_set_digest"],
            hash_bits=data["hash_bits"],
            range_size=data["range_size"],
            minimal=data["minimal"],
            load_factor=data["load_factor"],
            distinct_values=data["distinct_values"],
            strategy=data["strategy"],
            selected_bits=tuple(data["selected_bits"]),
            evaluations=data["evaluations"],
            fallback_used=data["fallback_used"],
            reasons=tuple(data.get("reasons", ())),
        )


def evaluate_plan(
    plan: SynthesisPlan, keys: Sequence[bytes]
) -> List[int]:
    """Reference hash values for the keys, via the IR interpreter."""
    func = optimize(build_ir(plan, name="perfect_certify"))
    return [interpret(func, key) for key in keys]


def certify(
    plan: SynthesisPlan,
    keys: Sequence[bytes],
    strategy: str = "",
    selected_bits: Sequence[int] = (),
    evaluations: int = 0,
    fallback_used: bool = False,
    compiled=None,
) -> PerfectCertificate:
    """Exhaustively evaluate the plan over the closed set and judge it.

    Args:
        plan: the candidate perfect plan.
        keys: the (deduplicated) closed key set.
        strategy/selected_bits/evaluations/fallback_used: search
            metadata recorded verbatim in the certificate.
        compiled: the compiled scalar callable; when given, every key is
            cross-checked interpreter-vs-compiled and any divergence
            refuses certification.
    """
    with span("perfect.certify", keys=len(keys)):
        reasons: List[str] = []
        values = evaluate_plan(plan, keys)
        if compiled is not None:
            for key, expected in zip(keys, values):
                got = compiled(key)
                if got != expected:
                    reasons.append(
                        f"compiled function diverges from the interpreter "
                        f"on {key!r}: {got:#x} != {expected:#x}"
                    )
                    break
        distinct = len(set(values))
        if distinct != len(keys):
            collisions = len(keys) - distinct
            reasons.append(
                f"{collisions} collision(s) over the {len(keys)}-key set"
            )
        hash_bits = plan_hash_bits(plan)
        range_size = 1 << hash_bits
        return PerfectCertificate(
            certified=not reasons,
            key_count=len(keys),
            key_set_digest=key_set_digest(keys),
            hash_bits=hash_bits,
            range_size=range_size,
            minimal=range_size == len(keys),
            load_factor=len(keys) / range_size,
            distinct_values=distinct,
            strategy=strategy,
            selected_bits=tuple(selected_bits),
            evaluations=evaluations,
            fallback_used=fallback_used,
            reasons=tuple(reasons),
        )


def validate_certificate(
    certificate: PerfectCertificate,
    hash_function,
    keys: Sequence[bytes],
) -> List[str]:
    """Re-check a certificate against a key set; empty list means valid.

    The checks mirror what the fuzz oracle asserts: the certificate must
    be certified, must cover exactly this set (mutated or open sets
    refuse on the digest), and the function must still be collision-free
    on it.
    """
    problems: List[str] = []
    if not certificate.certified:
        problems.append("certificate is not certified")
    if not certificate.covers(keys):
        problems.append(
            "key set does not match the certified closed set "
            "(mutated, extended, or truncated)"
        )
        return problems
    values = {hash_function(key) for key in set(keys)}
    if len(values) != certificate.key_count:
        problems.append(
            f"function collides on the certified set: "
            f"{certificate.key_count - len(values)} collision(s)"
        )
    return problems

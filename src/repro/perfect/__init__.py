"""``repro.perfect``: minimal-perfect-hash synthesis for closed key sets.

The paper synthesizes collision-*cheap* hashes from format structure;
this tier goes one step further for workloads whose key set is closed
and enumerable (static dictionaries, routing tables, enum codecs,
keyword sets): a collision-*free* hash, searched rather than derived,
certified by exhaustive evaluation, and emitted as an ordinary
:class:`~repro.core.plan.SynthesisPlan` so every existing execution
tier — interpreter, Python/C++ backends, NumPy batch, native JIT,
compile cache — runs it unchanged.

- :mod:`repro.perfect.search` — greedy + budgeted-exhaustive selection
  of distinguishing bits from the verifier's live-bit report;
- :mod:`repro.perfect.certificate` — the
  :class:`PerfectCertificate` binding a plan to its key set;
- :mod:`repro.perfect.synthesis` — :func:`synthesize_perfect` and the
  :class:`PerfectHash` wrapper containers consult for their
  no-collision fast path;
- :mod:`repro.perfect.keysets` — built-in closed fixtures (C keywords,
  HTTP methods, an enum codec) and closed RQ samples for the bench.
"""

from repro.errors import PerfectSearchError
from repro.perfect.certificate import (
    PerfectCertificate,
    certify,
    key_set_digest,
    validate_certificate,
)
from repro.perfect.keysets import (
    BUILTIN_KEY_SET_NAMES,
    builtin_key_set,
    pad_keys,
    rq_closed_set,
)
from repro.perfect.search import SearchBudget, SearchOutcome
from repro.perfect.synthesis import PerfectHash, synthesize_perfect

__all__ = [
    "BUILTIN_KEY_SET_NAMES",
    "PerfectCertificate",
    "PerfectHash",
    "PerfectSearchError",
    "SearchBudget",
    "SearchOutcome",
    "builtin_key_set",
    "certify",
    "key_set_digest",
    "pad_keys",
    "rq_closed_set",
    "synthesize_perfect",
    "validate_certificate",
]

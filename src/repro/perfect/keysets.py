"""Built-in closed key sets for the perfect-hash tier.

Three fixtures ship with the library — the classic gperf demo (C
keywords), a protocol dispatch table (HTTP methods), and a wire-codec
enum — plus closed samples of the paper's RQ key formats for the
perfect-vs-gperf benchmark.  All fixtures are *fixed-width*: keys are
padded to a common length because SEPE refuses sub-8-byte bodies
(paper footnote 5) and because a fixed-length format is the strong
path for structural perfection (disjoint pext lanes, Section 3.2.3).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from repro.errors import SynthesisError
from repro.keygen import Distribution, KeyGenerator, key_spec

KeyLike = Union[bytes, str]

MIN_BODY = 8
"""Smallest key body SEPE specializes (paper footnote 5)."""


def pad_keys(
    keys: Sequence[KeyLike],
    length: int = 0,
    fill: bytes = b"\x00",
) -> Tuple[bytes, ...]:
    """Right-pad keys to a common width (at least :data:`MIN_BODY`).

    Padding keeps distinctness: two distinct inputs stay distinct after
    padding with a byte none of them ends in.  Raises
    :class:`SynthesisError` when padding *would* merge keys (an input
    already ends with the fill byte and collides with a shorter one).
    """
    encoded = [
        key.encode("utf-8") if isinstance(key, str) else bytes(key)
        for key in keys
    ]
    width = max([length, MIN_BODY] + [len(key) for key in encoded])
    padded = tuple(
        key + fill * (width - len(key)) for key in encoded
    )
    if len(set(padded)) != len(set(encoded)):
        raise SynthesisError(
            f"padding to {width} bytes with {fill!r} merges distinct keys"
        )
    return padded


# The 32 keywords of C89 — the canonical gperf demonstration set.
C_KEYWORDS = (
    "auto break case char const continue default do double else enum "
    "extern float for goto if int long register return short signed "
    "sizeof static struct switch typedef union unsigned void volatile "
    "while"
).split()

HTTP_METHODS = (
    "GET HEAD POST PUT DELETE CONNECT OPTIONS TRACE PATCH".split()
)

# A wire-codec enum: fixed 12-byte event tags (underscore-padded), the
# shape a serialization layer dispatches on.
ENUM_CODEC_EVENTS = (
    "open close read write seek flush mmap sync stat chmod chown "
    "rename unlink mkdir rmdir link"
).split()


def _enum_codec_keys() -> Tuple[bytes, ...]:
    return tuple(
        f"EV_{name.upper()}".ljust(12, "_").encode("ascii")
        for name in ENUM_CODEC_EVENTS
    )


_BUILTIN_BUILDERS = {
    "c-keywords": lambda: pad_keys(C_KEYWORDS),
    "http-methods": lambda: pad_keys(HTTP_METHODS),
    "enum-codec": _enum_codec_keys,
}

BUILTIN_KEY_SET_NAMES: Tuple[str, ...] = tuple(_BUILTIN_BUILDERS)

_CACHE: Dict[str, Tuple[bytes, ...]] = {}


def builtin_key_set(name: str) -> Tuple[bytes, ...]:
    """One of the shipped closed key sets, by name.

    Raises:
        SynthesisError: for an unknown name.
    """
    builder = _BUILTIN_BUILDERS.get(name)
    if builder is None:
        known = ", ".join(BUILTIN_KEY_SET_NAMES)
        raise SynthesisError(
            f"unknown built-in key set {name!r} (known: {known})"
        )
    if name not in _CACHE:
        _CACHE[name] = builder()
    return _CACHE[name]


def rq_closed_set(
    name: str, count: int = 1000, seed: int = 0
) -> List[bytes]:
    """A closed sample of one of the paper's RQ key formats.

    Draws ``count`` *distinct* keys from the named
    :data:`~repro.keygen.KEY_TYPES` spec (SSN, MAC, IPV4, ...) — the
    closed-world version of the pools the RQ benchmarks stream.
    """
    spec = key_spec(name)
    return KeyGenerator(spec, Distribution.UNIFORM, seed).distinct_pool(
        count
    )

"""Bench regression ledger: a committed trajectory of H-Time figures.

The repo's benchmarks write ad-hoc ``BENCH_*.json`` artifacts (batch
comparison, inference engines); each has its own shape, so nothing can
answer "did this PR make hashing slower?" without a human eyeballing
two JSON files.  This module gives the figures a unified schema and a
memory:

- **Entries** (:class:`LedgerEntry`) flatten any report into
  ``section/subject/variant/metric`` ids — e.g.
  ``batch/SSN/pext/scalar_ns_per_key`` or
  ``infer/fixed/bigint/ns_per_key`` — each carrying a headline value
  (ns/key, lower is better), the per-repeat samples when the producer
  kept them, and the machine/python fingerprint context.
- **The ledger** (``BENCH_LEDGER.json``) stores the current entry set
  plus a bounded history of prior snapshots, so the committed artifact
  is a perf *trajectory*, not a point.
- **Comparison** (:func:`compare_entries`) reuses the paper's own
  Mann–Whitney machinery (:func:`repro.bench.metrics.mann_whitney_u`):
  an entry regresses only when its ratio breaches the threshold *and*
  the samples are statistically distinguishable (when both sides have
  samples), which keeps single-shot timer noise from failing CI.
  Cross-machine comparisons are fingerprint-gated: skipped by default,
  or run with a loosened threshold under ``allow_cross_host`` — a
  laptop ledger cannot hold a CI runner to 1.5x.

``sepe bench --compare BENCH_LEDGER.json`` measures a fresh smoke
sample and verdicts it against the committed baseline; the CI
``bench-regression-gate`` job fails on any ``regression`` verdict.
Rebuild the committed ledger with ``python -m repro.bench.ledger``.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.metrics import mann_whitney_u

LEDGER_VERSION = 1

DEFAULT_THRESHOLD = 1.5
"""Ratio (current/baseline) above which a same-host entry regresses."""

DEFAULT_ALPHA = 0.05
"""Mann–Whitney significance level, matching the paper's claims."""

CROSS_HOST_FACTOR = 2.0
"""Extra slack multiplied into the threshold across fingerprints."""

_STATUS_ORDER = ("regression", "missing", "new", "improvement", "ok",
                 "skipped")


def _utc_stamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


# -- fingerprints ------------------------------------------------------


def _native_compiler_identity() -> Optional[str]:
    """The probed native toolchain identity, or None when degraded."""
    from repro.codegen.native import detect_toolchain
    from repro.errors import NativeUnavailableError

    try:
        return detect_toolchain().identity
    except NativeUnavailableError:
        return None


def fingerprint() -> Dict[str, Any]:
    """Identity of the measuring machine and interpreter.

    Timing figures only transfer between runs that share this context;
    everything else is apples to oranges and must be compared loosely
    or not at all.  ``native_compiler`` names the C++ toolchain the
    native tier would use (None without one): `.so` timings produced by
    different compilers are no more comparable than those from
    different machines.
    """
    return {
        "machine": platform.machine(),
        "processor": platform.processor(),
        "system": platform.system(),
        "python_implementation": platform.python_implementation(),
        "python_version": platform.python_version(),
        "native_compiler": _native_compiler_identity(),
    }


def fingerprints_comparable(
    baseline: Dict[str, Any], current: Dict[str, Any]
) -> bool:
    """Whether two fingerprints describe the same measurement context.

    Architecture, OS, interpreter implementation, and the major.minor
    Python version must match; the patch release may differ (timing
    characteristics are stable across patch releases).  When *both*
    sides recorded a native compiler identity, those must match too —
    a gcc-built ledger cannot gate clang-built timings — but a side
    without the key (an older ledger, or a host with no toolchain)
    does not block comparison of the Python-tier entries.
    """

    def minor(version: str) -> str:
        return ".".join(str(version).split(".")[:2])

    for key in ("machine", "system", "python_implementation"):
        if baseline.get(key) != current.get(key):
            return False
    baseline_cc = baseline.get("native_compiler")
    current_cc = current.get("native_compiler")
    if baseline_cc and current_cc and baseline_cc != current_cc:
        return False
    return minor(baseline.get("python_version", "")) == minor(
        current.get("python_version", "")
    )


# -- entries -----------------------------------------------------------


@dataclass
class LedgerEntry:
    """One benchmarked figure, normalized out of whatever report shape.

    ``value`` is the headline number in ``unit`` (always a
    lower-is-better ns/key figure today); ``samples`` holds per-repeat
    measurements when the producer kept them, which is what makes
    noise-aware verdicts possible downstream.
    """

    id: str
    value: float
    unit: str = "ns_per_key"
    samples: List[float] = field(default_factory=list)
    repeats: int = 0
    source: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "value": self.value,
            "unit": self.unit,
            "samples": list(self.samples),
            "repeats": self.repeats,
            "source": self.source,
        }

    @staticmethod
    def from_dict(entry_id: str, document: Dict[str, Any]) -> "LedgerEntry":
        return LedgerEntry(
            id=entry_id,
            value=float(document["value"]),
            unit=str(document.get("unit", "ns_per_key")),
            samples=[float(s) for s in document.get("samples", [])],
            repeats=int(document.get("repeats", 0)),
            source=str(document.get("source", "")),
        )


def normalize_batch_report(report: Dict[str, Any]) -> List[LedgerEntry]:
    """Flatten a ``BENCH_batch.json`` document into ledger entries.

    ``native_ns_per_key`` rows are included whenever the report carries
    them (hosts without a toolchain write None, which is skipped), so
    ``sepe bench --compare`` gates native regressions exactly like the
    Python tiers.
    """
    entries: List[LedgerEntry] = []
    for row in report.get("rows", []):
        stem = f"batch/{row['key_type']}/{row['family']}"
        for metric in (
            "scalar_ns_per_key",
            "batch_ns_per_key",
            "native_ns_per_key",
        ):
            value = row.get(metric)
            if value is None:
                continue
            entries.append(
                LedgerEntry(
                    id=f"{stem}/{metric}",
                    value=float(value),
                    repeats=int(row.get("repeats", 0)),
                    source="batch_report",
                )
            )
    return entries


def normalize_infer_report(report: Dict[str, Any]) -> List[LedgerEntry]:
    """Flatten a ``BENCH_infer.json`` document into ledger entries."""
    entries: List[LedgerEntry] = []
    repeats = int(report.get("params", {}).get("repeats", 0))
    for corpus in report.get("corpora", []):
        for row in corpus.get("rows", []):
            entries.append(
                LedgerEntry(
                    id=(
                        f"infer/{corpus['name']}/{row['engine']}"
                        "/ns_per_key"
                    ),
                    value=float(row["ns_per_key"]),
                    repeats=repeats,
                    source="infer_report",
                )
            )
    return entries


def normalize_serve_report(report: Dict[str, Any]) -> List[LedgerEntry]:
    """Flatten a ``BENCH_serve.json`` document into ledger entries.

    Scaling rows become ``serve/scaling/shards{N}/ns_per_key`` (with
    per-repeat samples, so the smoke compare can verdict them
    noise-aware).  The drift replay contributes
    ``serve/drift/replay/ns_per_key`` — streaming throughput *through*
    a hot swap — and ``serve/drift/swap/swap_ms``, the measured
    convergence latency of the verified swap.  The swap entry is
    recorded for the trajectory but the smoke compare does not
    re-measure it (a JIT-dominated one-shot figure would flap CI); a
    ``missing`` verdict is informational, never a failure.
    """
    entries: List[LedgerEntry] = []
    scaling = report.get("scaling", {})
    for row in scaling.get("rows", []):
        samples = [float(s) for s in row.get("samples_ns_per_key", [])]
        entries.append(
            LedgerEntry(
                id=f"serve/scaling/shards{row['shards']}/ns_per_key",
                value=float(row["ns_per_key"]),
                samples=samples,
                repeats=len(samples),
                source="serve_report",
            )
        )
    drift = report.get("drift", {})
    if drift.get("ns_per_key"):
        entries.append(
            LedgerEntry(
                id="serve/drift/replay/ns_per_key",
                value=float(drift["ns_per_key"]),
                source="serve_report",
            )
        )
    for event in drift.get("swap_events", []):
        entries.append(
            LedgerEntry(
                id="serve/drift/swap/swap_ms",
                value=float(event["swap_ms"]),
                unit="ms",
                source="serve_report",
            )
        )
        break  # one representative swap per report
    return entries


def normalize_perfect_report(report: Dict[str, Any]) -> List[LedgerEntry]:
    """Flatten a ``BENCH_perfect.json`` document into ledger entries.

    Each (key set, variant) cell contributes
    ``perfect/<set>/<variant>/h_ns_per_key`` and
    ``perfect/<set>/<variant>/lookup_ns_per_key`` with per-repeat
    samples, so the certified fast path is regression-gated against the
    gperf/FNV/paper-family baselines measured on the same closed set.
    """
    entries: List[LedgerEntry] = []
    for key_set in report.get("key_sets", []):
        for row in key_set.get("rows", []):
            stem = f"perfect/{key_set['key_set']}/{row['variant']}"
            for metric, sample_key in (
                ("h_ns_per_key", "samples_h"),
                ("lookup_ns_per_key", "samples_lookup"),
            ):
                samples = [float(s) for s in row.get(sample_key, [])]
                entries.append(
                    LedgerEntry(
                        id=f"{stem}/{metric}",
                        value=float(row[metric]),
                        samples=samples,
                        repeats=int(row.get("repeats", len(samples))),
                        source="perfect_report",
                    )
                )
    return entries


def normalize_report(report: Dict[str, Any]) -> List[LedgerEntry]:
    """Dispatch on a report's self-declared kind.

    Raises:
        ValueError: for documents that are none of a batch comparison
            (``experiment: batch_vs_scalar_h_time``), an inference
            comparison (``benchmark: infer_compare``), a serve replay
            (``benchmark: serve_replay``), or a perfect-tier report
            (``benchmark: perfect``).
    """
    if report.get("experiment") == "batch_vs_scalar_h_time":
        return normalize_batch_report(report)
    if report.get("benchmark") == "infer_compare":
        return normalize_infer_report(report)
    if report.get("benchmark") == "serve_replay":
        return normalize_serve_report(report)
    if report.get("benchmark") == "perfect":
        return normalize_perfect_report(report)
    raise ValueError(
        "unrecognized bench report: expected a batch, infer, serve, or "
        "perfect comparison"
    )


def collect_smoke_entries(
    key_types: Sequence[str] = ("SSN", "MAC"),
    families: Optional[Sequence[Any]] = None,
    keys_per_type: int = 4000,
    repeats: int = 5,
    seed: int = 0,
) -> List[LedgerEntry]:
    """Measure a fresh smoke sample in ledger-entry form.

    The same cells as :func:`repro.bench.batch_compare.compare_scalar_batch`
    — scalar and batched H-Time per (key type, family) — but each repeat
    is timed *individually* so entries carry per-repeat sample arrays.
    ``repeats`` defaults to 5 because Mann–Whitney needs at least four
    observations per side before p can drop under 0.05; with fewer, the
    comparison silently degrades to ratio-only verdicts.
    """
    from repro.bench.batch_compare import DEFAULT_FAMILIES
    from repro.bench.runner import measure_h_time, measure_h_time_batch
    from repro.core.synthesis import synthesize
    from repro.keygen.distributions import Distribution
    from repro.keygen.generator import generate_keys
    from repro.keygen.keyspec import key_spec

    families = DEFAULT_FAMILIES if families is None else families
    repeats = max(repeats, 1)
    entries: List[LedgerEntry] = []
    for key_type in key_types:
        spec = key_spec(key_type)
        keys = generate_keys(
            spec.name, keys_per_type, Distribution.UNIFORM, seed=seed
        )
        scale = 1e9 / len(keys)
        for family in families:
            synthesized = synthesize(spec.regex, family)
            scalar = [
                measure_h_time(synthesized.function, keys, repeats=1) * scale
                for _ in range(repeats)
            ]
            batch = [
                measure_h_time_batch(
                    synthesized.batch_function, keys, repeats=1
                )
                * scale
                for _ in range(repeats)
            ]
            stem = f"batch/{spec.name}/{family.value}"
            entries.append(
                LedgerEntry(
                    id=f"{stem}/scalar_ns_per_key",
                    value=min(scalar),
                    samples=scalar,
                    repeats=repeats,
                    source="smoke",
                )
            )
            entries.append(
                LedgerEntry(
                    id=f"{stem}/batch_ns_per_key",
                    value=min(batch),
                    samples=batch,
                    repeats=repeats,
                    source="smoke",
                )
            )
            native_batch = synthesized.native_batch_function
            if native_batch is not None:
                native = [
                    measure_h_time_batch(native_batch, keys, repeats=1)
                    * scale
                    for _ in range(repeats)
                ]
                entries.append(
                    LedgerEntry(
                        id=f"{stem}/native_ns_per_key",
                        value=min(native),
                        samples=native,
                        repeats=repeats,
                        source="smoke",
                    )
                )
    return entries


def collect_serve_smoke_entries(
    shard_counts: Sequence[int] = (1, 2, 4),
    threads: int = 4,
    keys_per_thread: int = 20_000,
    repeats: int = 3,
    seed: int = 0,
) -> List[LedgerEntry]:
    """Measure a small serve-replay scaling sample in ledger form.

    The same ``serve/scaling/shards{N}/ns_per_key`` ids the committed
    ``BENCH_serve.json`` normalizes to, so ``sepe bench --compare``
    gates the serving hot path alongside the kernel tiers.  Only the
    scaling rows are smoke-measured; the drift/swap figures stay
    committed-artifact-only (see :func:`normalize_serve_report`).
    """
    from repro.core.plan import HashFamily
    from repro.serve.replay import ReplayConfig, measure_scaling

    config = ReplayConfig(
        threads=threads,
        keys_per_thread=keys_per_thread,
        family=HashFamily.PEXT,
        seed=seed,
    )
    entries: List[LedgerEntry] = []
    for row in measure_scaling(
        config, shard_counts=shard_counts, repeats=repeats
    ):
        samples = [float(s) for s in row["samples_ns_per_key"]]
        entries.append(
            LedgerEntry(
                id=f"serve/scaling/shards{row['shards']}/ns_per_key",
                value=float(row["ns_per_key"]),
                samples=samples,
                repeats=len(samples),
                source="smoke",
            )
        )
    return entries


def collect_perfect_smoke_entries(
    repeats: int = 3,
) -> List[LedgerEntry]:
    """Measure the perfect tier's built-in fixtures in ledger form.

    Only the three shipped key sets are smoke-measured — they are small
    and byte-identical on every host, so the ids line up exactly with
    the committed ``BENCH_perfect.json``.  The RQ closed-sample rows
    stay committed-artifact-only (re-sampling 1,000-key pools per CI
    run would dominate the smoke budget); their ``missing`` verdicts
    are informational, never failures.
    """
    from repro.bench.perfect_compare import measure

    report = measure(rq_count=0, repeats=repeats, rq_sets=())
    entries = normalize_perfect_report(report)
    for entry in entries:
        entry.source = "smoke"
    return entries


# -- the ledger document ----------------------------------------------


def new_ledger(machine: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """An empty ledger document stamped with the current context."""
    return {
        "version": LEDGER_VERSION,
        "updated_at": _utc_stamp(),
        "fingerprint": fingerprint() if machine is None else machine,
        "note": "",
        "entries": {},
        "history": [],
    }


def update_ledger(
    ledger: Dict[str, Any],
    entries: Sequence[LedgerEntry],
    note: str = "",
    max_history: int = 24,
) -> Dict[str, Any]:
    """Replace the current entry set, demoting it into the history.

    The displaced snapshot keeps only headline values (not samples), so
    the committed trajectory stays small; history is bounded at
    ``max_history`` snapshots, oldest dropped first.
    """
    if ledger.get("entries"):
        ledger.setdefault("history", []).append(
            {
                "recorded_at": ledger.get("updated_at", ""),
                "fingerprint": ledger.get("fingerprint", {}),
                "note": ledger.get("note", ""),
                "entries": {
                    entry_id: document["value"]
                    for entry_id, document in ledger["entries"].items()
                },
            }
        )
        ledger["history"] = ledger["history"][-max_history:]
    ledger["version"] = LEDGER_VERSION
    ledger["updated_at"] = _utc_stamp()
    ledger["fingerprint"] = fingerprint()
    ledger["note"] = note
    ledger["entries"] = {
        entry.id: entry.to_dict() for entry in entries
    }
    return ledger


def ledger_entries(ledger: Dict[str, Any]) -> List[LedgerEntry]:
    """The current entry set of a ledger document, as objects."""
    return [
        LedgerEntry.from_dict(entry_id, document)
        for entry_id, document in sorted(ledger.get("entries", {}).items())
    ]


def trajectory(
    ledger: Dict[str, Any], entry_id: str
) -> List[Any]:
    """``(recorded_at, value)`` pairs for one entry, oldest first.

    Includes the current snapshot last; history snapshots missing the
    entry are skipped (the benchmark set may have grown over time).
    """
    points = [
        (snapshot.get("recorded_at", ""), snapshot["entries"][entry_id])
        for snapshot in ledger.get("history", [])
        if entry_id in snapshot.get("entries", {})
    ]
    current = ledger.get("entries", {}).get(entry_id)
    if current is not None:
        points.append((ledger.get("updated_at", ""), current["value"]))
    return points


def load_ledger(path: str) -> Optional[Dict[str, Any]]:
    """Read a ledger; None when absent or unparseable."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(document, dict) or "entries" not in document:
        return None
    return document


def write_ledger(ledger: Dict[str, Any], path: str) -> None:
    """Persist a ledger as indented, key-stable JSON (the committed file)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(ledger, handle, indent=2, sort_keys=True)
        handle.write("\n")


# -- comparison --------------------------------------------------------


@dataclass
class Verdict:
    """The comparison outcome for one entry id."""

    entry_id: str
    status: str  # regression | improvement | ok | new | missing | skipped
    baseline: Optional[float] = None
    current: Optional[float] = None
    ratio: Optional[float] = None
    p_value: Optional[float] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entry_id": self.entry_id,
            "status": self.status,
            "baseline": self.baseline,
            "current": self.current,
            "ratio": self.ratio,
            "p_value": self.p_value,
            "detail": self.detail,
        }


def _p_value(
    baseline: LedgerEntry, current: LedgerEntry
) -> Optional[float]:
    """Mann–Whitney p between sample arrays; None when unavailable."""
    if len(baseline.samples) < 2 or len(current.samples) < 2:
        return None
    try:
        p = mann_whitney_u(baseline.samples, current.samples)
    except ValueError:
        return None
    # All-tied samples give the normal approximation zero variance
    # (p = nan); identical timings are the definition of "no change".
    return 1.0 if p != p else p


def compare_entries(
    baseline: Sequence[LedgerEntry],
    current: Sequence[LedgerEntry],
    threshold: float = DEFAULT_THRESHOLD,
    alpha: float = DEFAULT_ALPHA,
) -> List[Verdict]:
    """Verdict every entry id present on either side.

    For a lower-is-better metric the ratio is ``current / baseline``.
    A breach of ``threshold`` (or ``1/threshold`` for improvements) is
    only *confirmed* when the two sample arrays are distinguishable at
    level ``alpha`` — when either side lacks samples the ratio alone
    decides, which is the pre-ledger behaviour.  Ids present on one
    side only are reported as ``new`` / ``missing``, never as failures.
    """
    if threshold <= 1:
        raise ValueError("threshold must be > 1")
    base = {entry.id: entry for entry in baseline}
    cur = {entry.id: entry for entry in current}
    verdicts: List[Verdict] = []
    for entry_id in sorted(set(base) | set(cur)):
        before, after = base.get(entry_id), cur.get(entry_id)
        if before is None:
            verdicts.append(
                Verdict(entry_id, "new", current=after.value,
                        detail="no baseline entry")
            )
            continue
        if after is None:
            verdicts.append(
                Verdict(entry_id, "missing", baseline=before.value,
                        detail="entry absent from current run")
            )
            continue
        ratio = (
            after.value / before.value
            if before.value > 0
            else float("inf")
        )
        p = _p_value(before, after)
        # A breach past 2x the threshold stands on the ratio alone: a
        # noisy sample array must not be able to launder an extreme
        # slowdown through an inconclusive p-value.
        significant = p is None or p < alpha or ratio > 2 * threshold
        if ratio > threshold and significant:
            status = "regression"
        elif ratio < 1 / threshold and significant:
            status = "improvement"
        else:
            status = "ok"
        verdicts.append(
            Verdict(
                entry_id,
                status,
                baseline=before.value,
                current=after.value,
                ratio=ratio,
                p_value=p,
            )
        )
    return verdicts


def compare_ledger(
    ledger: Dict[str, Any],
    current: Sequence[LedgerEntry],
    threshold: float = DEFAULT_THRESHOLD,
    alpha: float = DEFAULT_ALPHA,
    allow_cross_host: bool = False,
    cross_host_factor: float = CROSS_HOST_FACTOR,
    machine: Optional[Dict[str, Any]] = None,
) -> List[Verdict]:
    """Compare fresh entries against a ledger, fingerprint-gated.

    When the ledger was recorded on a different machine/interpreter the
    comparison is *skipped* entirely unless ``allow_cross_host``, in
    which case the regression threshold is multiplied by
    ``cross_host_factor`` — absolute timings do not transfer between
    hosts, but an order-of-magnitude blowup still should not pass.
    """
    current_fp = fingerprint() if machine is None else machine
    baseline_fp = ledger.get("fingerprint", {})
    comparable = fingerprints_comparable(baseline_fp, current_fp)
    if not comparable and not allow_cross_host:
        return [
            Verdict(
                entry.id,
                "skipped",
                baseline=entry.value,
                detail=(
                    "fingerprint mismatch (baseline "
                    f"{baseline_fp.get('machine')}/"
                    f"py{baseline_fp.get('python_version')}); "
                    "pass allow_cross_host to compare loosely"
                ),
            )
            for entry in ledger_entries(ledger)
        ]
    if not comparable:
        threshold *= cross_host_factor
    return compare_entries(
        ledger_entries(ledger), current, threshold=threshold, alpha=alpha
    )


def regression_count(verdicts: Sequence[Verdict]) -> int:
    """Number of confirmed regressions (the CI gate's exit signal)."""
    return sum(1 for verdict in verdicts if verdict.status == "regression")


def render_verdicts(verdicts: Sequence[Verdict]) -> str:
    """Aligned text table of comparison verdicts, worst first."""
    if not verdicts:
        return "(no entries to compare)"
    order = {status: i for i, status in enumerate(_STATUS_ORDER)}
    rows = sorted(
        verdicts, key=lambda v: (order.get(v.status, 99), v.entry_id)
    )
    lines = [
        f"{'status':12s} {'entry':44s} {'baseline':>10s} "
        f"{'current':>10s} {'ratio':>7s} {'p':>7s}"
    ]
    for verdict in rows:
        lines.append(
            f"{verdict.status:12s} {verdict.entry_id:44s} "
            f"{_fmt(verdict.baseline):>10s} {_fmt(verdict.current):>10s} "
            f"{_fmt_ratio(verdict.ratio):>7s} "
            f"{_fmt_p(verdict.p_value):>7s}"
            + (f"  {verdict.detail}" if verdict.detail else "")
        )
    counts: Dict[str, int] = {}
    for verdict in verdicts:
        counts[verdict.status] = counts.get(verdict.status, 0) + 1
    summary = ", ".join(
        f"{counts[status]} {status}"
        for status in _STATUS_ORDER
        if status in counts
    )
    lines.append(f"verdicts: {summary}")
    return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    return f"{value:,.1f}" if value is not None else "-"


def _fmt_ratio(value: Optional[float]) -> str:
    return f"{value:.2f}x" if value is not None else "-"


def _fmt_p(value: Optional[float]) -> str:
    return f"{value:.3f}" if value is not None else "-"


# -- ledger maintenance CLI -------------------------------------------


def _main(argv: Optional[Sequence[str]] = None) -> int:
    """Build or refresh a ledger: ``python -m repro.bench.ledger``."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.ledger",
        description="normalize bench reports into the regression ledger",
    )
    parser.add_argument(
        "--out", default="BENCH_LEDGER.json", help="ledger file to update"
    )
    parser.add_argument(
        "--reports",
        nargs="*",
        default=[],
        metavar="FILE",
        help="BENCH_*.json reports to normalize into the snapshot",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="also measure the smoke sample (with per-repeat samples)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="also measure the serve-replay scaling smoke sample",
    )
    parser.add_argument(
        "--perfect",
        action="store_true",
        help="also measure the perfect-tier built-in fixtures",
    )
    parser.add_argument("--keys", type=int, default=4000)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--key-types", nargs="*", default=["SSN", "MAC"]
    )
    parser.add_argument("--note", default="")
    args = parser.parse_args(argv)

    entries: List[LedgerEntry] = []
    for path in args.reports:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                report = json.load(handle)
            entries.extend(normalize_report(report))
        except (OSError, json.JSONDecodeError, KeyError, ValueError) as error:
            print(f"error: {path}: {error}", file=sys.stderr)
            return 2
    if args.smoke:
        entries.extend(
            collect_smoke_entries(
                key_types=args.key_types,
                keys_per_type=args.keys,
                repeats=args.repeats,
                seed=args.seed,
            )
        )
    if args.serve:
        entries.extend(
            collect_serve_smoke_entries(
                repeats=args.repeats, seed=args.seed
            )
        )
    if args.perfect:
        entries.extend(
            collect_perfect_smoke_entries(repeats=args.repeats)
        )
    if not entries:
        print(
            "error: nothing to record (pass --reports and/or --smoke)",
            file=sys.stderr,
        )
        return 2
    ledger = load_ledger(args.out)
    if ledger is None:
        ledger = new_ledger()
    update_ledger(ledger, entries, note=args.note)
    write_ledger(ledger, args.out)
    print(
        f"recorded {len(entries)} entries to {args.out} "
        f"({len(ledger.get('history', []))} historical snapshots)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    raise SystemExit(_main())

"""Reproduction of the paper's Figures 13 through 20 as data series.

No plotting library is assumed offline, so each ``figure*`` function
returns the numeric series the corresponding figure plots (box-plot
samples, line series, bar heights); :mod:`repro.bench.report` renders
them as text.  The *shape* of each figure — orderings, crossovers,
trends — is what EXPERIMENTS.md compares against the paper.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.experiment import ExperimentSpec, experiment_grid
from repro.bench.metrics import pearson_correlation
from repro.bench.runner import measure_b_time, measure_h_time
from repro.bench.suite import make_hash_suite
from repro.containers.low_mixing import LowMixingMap
from repro.core.plan import HashFamily
from repro.core.synthesis import synthesize, synthesize_short_key
from repro.hashes.registry import baseline_hashes
from repro.keygen.distributions import Distribution
from repro.keygen.generator import generate_keys
from repro.keygen.keyspec import KEY_TYPES

HashCallable = Callable[[bytes], int]

DEFAULT_KEY_TYPES = tuple(KEY_TYPES)


def _boxplot_series(
    key_types: Sequence[str],
    arch: str,
    samples: int,
    affectations: int,
    reduced_grid: bool,
) -> Dict[str, List[float]]:
    series: Dict[str, List[float]] = {}
    for key_type in key_types:
        suite = make_hash_suite(key_type, arch=arch)
        cells = experiment_grid(key_types=[key_type], reduced=reduced_grid)
        for cell in cells:
            for name, function in suite.items():
                runs = measure_b_time(
                    function,
                    cell,
                    samples=samples,
                    affectations=affectations,
                )
                series.setdefault(name, []).extend(
                    run.elapsed_seconds for run in runs
                )
    return series


def figure13(
    key_types: Sequence[str] = DEFAULT_KEY_TYPES,
    samples: int = 1,
    affectations: int = 5000,
    reduced_grid: bool = True,
) -> Dict[str, List[float]]:
    """Figure 13: B-Time box-plot samples per hash function (x86).

    Gperf is included in the returned series; the paper excludes it from
    the plot (two orders of magnitude slower) but reports it in Table 1 —
    report rendering marks it as the outlier.
    """
    return _boxplot_series(
        key_types, "x86", samples, affectations, reduced_grid
    )


def figure14(
    key_types: Sequence[str] = DEFAULT_KEY_TYPES,
    samples: int = 1,
    affectations: int = 5000,
    reduced_grid: bool = True,
) -> Dict[str, List[int]]:
    """Figure 14: bucket-collision counts per hash function."""
    series: Dict[str, List[int]] = {}
    for key_type in key_types:
        suite = make_hash_suite(key_type)
        cells = experiment_grid(key_types=[key_type], reduced=reduced_grid)
        for cell in cells:
            for name, function in suite.items():
                runs = measure_b_time(
                    function, cell, samples=samples, affectations=affectations
                )
                series.setdefault(name, []).extend(
                    run.bucket_collisions for run in runs
                )
    return series


def figure15(
    key_types: Sequence[str] = DEFAULT_KEY_TYPES,
    samples: int = 1,
    affectations: int = 5000,
    reduced_grid: bool = True,
) -> Dict[str, List[float]]:
    """Figure 15: B-Time on aarch64 — the suite without the Pext family.

    Substitution note: we cannot change the host CPU; what the paper's
    aarch64 run changes *algorithmically* is the absence of the Pext
    family (no ``bext``), which this series reproduces.
    """
    return _boxplot_series(
        key_types, "aarch64", samples, affectations, reduced_grid
    )


def figure16(
    exponents: Sequence[int] = tuple(range(4, 15)),
    repeats: int = 3,
) -> Dict[str, List[Tuple[int, float]]]:
    """Figure 16: synthesis time vs key size (RQ6).

    Keys are all-digit formats of 2^4 .. 2^14 bytes with no constant
    subsequences, so nothing can be skipped.  Returns per-family series
    of (key_bytes, seconds); the report computes Pearson correlations
    (the paper's linearity evidence — smallest r = 0.993).
    """
    series: Dict[str, List[Tuple[int, float]]] = {}
    for family in (HashFamily.OFFXOR, HashFamily.AES, HashFamily.PEXT):
        points: List[Tuple[int, float]] = []
        for exponent in exponents:
            size = 1 << exponent
            regex = f"[0-9]{{{size}}}"
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                synthesize(regex, family)
                best = min(best, time.perf_counter() - started)
            points.append((size, best))
        series[family.value] = points
    return series


def synthesis_linearity(
    series: Dict[str, List[Tuple[int, float]]]
) -> Dict[str, float]:
    """Pearson r between key size and synthesis time, per family."""
    return {
        name: pearson_correlation(
            [float(size) for size, _ in points],
            [seconds for _, seconds in points],
        )
        for name, points in series.items()
    }


DISCARD_STEPS = (0, 8, 16, 24, 32, 40, 48)
"""The X axis of Figures 17 and 18: least-significant bits discarded."""


def _low_mixing_run(
    suite: Dict[str, HashCallable],
    keys: Sequence[bytes],
    discard_bits: int,
) -> Tuple[Dict[str, int], Dict[str, int]]:
    bucket_collisions: Dict[str, int] = {}
    true_collisions: Dict[str, int] = {}
    for name, function in suite.items():
        table = LowMixingMap(function, discard_bits=discard_bits)
        for key in keys:
            table.insert(key, None)
        bucket_collisions[name] = table.bucket_collisions()
        truncated = {function(key) >> discard_bits for key in set(keys)}
        true_collisions[name] = len(set(keys)) - len(truncated)
    return bucket_collisions, true_collisions


def figure17_18(
    key_types: Sequence[str] = ("SSN", "IPV4", "MAC", "URL1"),
    keys_per_type: int = 10_000,
    discard_steps: Sequence[int] = DISCARD_STEPS,
) -> Tuple[
    Dict[str, List[Tuple[int, int]]], Dict[str, List[Tuple[int, int]]]
]:
    """Figures 17 and 18: low-mixing container sweeps (RQ7).

    For each discard amount X, keys are stored in a container indexing
    buckets by ``hash >> X``; returns (bucket-collision series,
    true-collision series), each mapping function name to
    ``[(X, count), ...]`` aggregated over key types.
    """
    bucket_series: Dict[str, List[Tuple[int, int]]] = {}
    true_series: Dict[str, List[Tuple[int, int]]] = {}
    suites = {
        key_type: make_hash_suite(key_type) for key_type in key_types
    }
    key_samples = {
        key_type: generate_keys(
            key_type, keys_per_type, Distribution.UNIFORM, seed=4
        )
        for key_type in key_types
    }
    for discard in discard_steps:
        totals_bucket: Dict[str, int] = {}
        totals_true: Dict[str, int] = {}
        for key_type in key_types:
            bucket, true = _low_mixing_run(
                suites[key_type], key_samples[key_type], discard
            )
            for name in bucket:
                totals_bucket[name] = totals_bucket.get(name, 0) + bucket[name]
                totals_true[name] = totals_true.get(name, 0) + true[name]
        for name in totals_bucket:
            bucket_series.setdefault(name, []).append(
                (discard, totals_bucket[name])
            )
            true_series.setdefault(name, []).append(
                (discard, totals_true[name])
            )
    return bucket_series, true_series


def figure18_four_digits(
    discard_bits: int = 32,
) -> Dict[str, Dict[str, int]]:
    """Figure 18's four-digit worst case: keys ``\\d{4}``, forced short-key
    synthesis, MSB vs LSB bucket indexing at 32 discarded bits."""
    keys = [f"{i:04d}".encode() for i in range(10_000)]
    functions: Dict[str, HashCallable] = {
        "STL": baseline_hashes()["STL"].function,
        "Pext": synthesize_short_key(r"\d{4}", HashFamily.PEXT).function,
    }
    results: Dict[str, Dict[str, int]] = {}
    for name, function in functions.items():
        msb_table = LowMixingMap(function, discard_bits=discard_bits)
        lsb_table = LowMixingMap(function, discard_bits=0)
        for key in keys:
            msb_table.insert(key, None)
            lsb_table.insert(key, None)
        msb_true = len(set(keys)) - len(
            {function(key) >> discard_bits for key in keys}
        )
        lsb_true = len(set(keys)) - len(
            {function(key) & ((1 << (64 - discard_bits)) - 1) for key in keys}
        )
        results[name] = {
            "msb_bucket_collisions": msb_table.bucket_collisions(),
            "msb_true_collisions": msb_true,
            "lsb_bucket_collisions": lsb_table.bucket_collisions(),
            "lsb_true_collisions": lsb_true,
        }
    return results


def figure19(
    exponents: Sequence[int] = tuple(range(4, 15)),
    keys_per_size: int = 200,
    repeats: int = 3,
) -> Dict[str, List[Tuple[int, float]]]:
    """Figure 19: hashing time vs key size (RQ8).

    All-digit keys of 2^4 .. 2^14 bytes, hashed by Pext and the library
    baselines; the paper's claim is linear scaling for all of them
    (smallest Pearson r = 0.9979 for Pext).
    """
    functions: Dict[str, HashCallable] = {
        name: named.function
        for name, named in baseline_hashes().items()
        if name != "Polymur"
    }
    series: Dict[str, List[Tuple[int, float]]] = {
        name: [] for name in functions
    }
    series["Pext"] = []
    for exponent in exponents:
        size = 1 << exponent
        keys = [
            str(index).rjust(size, "0").encode()[:size]
            for index in range(keys_per_size)
        ]
        pext = synthesize(f"[0-9]{{{size}}}", HashFamily.PEXT)
        for name, function in functions.items():
            series[name].append(
                (size, measure_h_time(function, keys, repeats=repeats))
            )
        series["Pext"].append(
            (size, measure_h_time(pext.function, keys, repeats=repeats))
        )
    return series


def figure20(
    key_types: Sequence[str] = ("SSN", "URL1"),
    samples: int = 1,
    affectations: int = 5000,
    spread: int = 300,
) -> Dict[str, List[float]]:
    """Figure 20: B-Time grouped by container type (RQ9).

    Returns container name → B-Time samples aggregated over the hash
    suite; the paper's finding is Multi variants slower, and relative
    hash-function ordering independent of container.

    The default spread is small relative to the affectation count so
    keys repeat: duplicate keys are what make the Multi variants do
    extra work (their chains grow where unique-key containers reject
    the insert).
    """
    from repro.keygen.driver import ALLOWED_MIXES, ExecutionMode
    from repro.keygen.keyspec import key_spec

    series: Dict[str, List[float]] = {}
    for key_type in key_types:
        suite = make_hash_suite(
            key_type, include=["STL", "Naive", "OffXor", "Aes", "Pext"]
        )
        for container_name in (
            "unordered_map",
            "unordered_set",
            "unordered_multimap",
            "unordered_multiset",
        ):
            cell = ExperimentSpec(
                key_spec=key_spec(key_type),
                container_name=container_name,
                distribution=Distribution.NORMAL,
                spread=spread,
                mode=ExecutionMode.BATCHED,
                mix=ALLOWED_MIXES[0],
            )
            for name, function in suite.items():
                runs = measure_b_time(
                    function, cell, samples=samples, affectations=affectations
                )
                series.setdefault(container_name, []).extend(
                    run.elapsed_seconds for run in runs
                )
    return series

"""Scalar-vs-batch H-Time comparison: the ``BENCH_batch.json`` source.

Quantifies the headline claim of the batch execution layer: calling a
specialized hash once per key pays CPython function-call and dispatch
overhead per key, while the batched kernel
(:func:`repro.codegen.batch.compile_plan_batch`) pays it once per
*batch*.  Each row times both forms of the same synthesized plan on the
same key sample and reports the amortization factor.

When the host has a working C++ toolchain the rows also carry the
*native* tier (:mod:`repro.codegen.native`): the JIT-compiled batched
entry point over the same keys, closing the Python → NumPy → native
speed ladder the paper measures.  Hosts without a compiler simply omit
the native columns (``native_ns_per_key`` is None) and record the
degradation reason at the report level.

Used by ``sepe bench --batch`` and by ``benchmarks/bench_batch.py``
(the CI smoke-bench that uploads ``BENCH_batch.json``).
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.bench.runner import measure_h_time, measure_h_time_batch
from repro.core.plan import HashFamily
from repro.core.synthesis import synthesize
from repro.keygen.distributions import Distribution
from repro.keygen.generator import generate_keys
from repro.keygen.keyspec import key_spec
from repro.obs.trace import span

DEFAULT_KEY_TYPES = ("SSN", "MAC")
DEFAULT_FAMILIES = (
    HashFamily.NAIVE,
    HashFamily.OFFXOR,
    HashFamily.AES,
    HashFamily.PEXT,
)


def compare_scalar_batch(
    key_types: Sequence[str] = DEFAULT_KEY_TYPES,
    families: Sequence[HashFamily] = DEFAULT_FAMILIES,
    keys_per_type: int = 20_000,
    repeats: int = 5,
    seed: int = 0,
) -> Dict[str, Any]:
    """Time scalar vs batch H-Time for every (key type, family) cell.

    Scalar H-Time uses the calibrated per-key loop of
    :func:`measure_h_time`; batch H-Time is one ``hash_many`` call
    (:func:`measure_h_time_batch`).  Returns a JSON-ready report whose
    rows carry both absolute ns/key figures and the batch speedup.
    """
    from repro.codegen.native import detect_toolchain
    from repro.errors import NativeUnavailableError

    native_compiler: Optional[str] = None
    native_reason: Optional[str] = None
    try:
        native_compiler = detect_toolchain().identity
    except NativeUnavailableError as exc:
        native_reason = str(exc)

    rows: List[Dict[str, Any]] = []
    with span("bench.batch_compare", cells=len(key_types) * len(families)):
        for key_type in key_types:
            spec = key_spec(key_type)
            keys = generate_keys(
                spec.name, keys_per_type, Distribution.UNIFORM, seed=seed
            )
            for family in families:
                synthesized = synthesize(spec.regex, family)
                scalar_seconds = measure_h_time(
                    synthesized.function, keys, repeats=repeats
                )
                batch_seconds = measure_h_time_batch(
                    synthesized.batch_function, keys, repeats=repeats
                )
                native_batch = (
                    synthesized.native_batch_function
                    if native_compiler is not None
                    else None
                )
                native_seconds: Optional[float] = None
                compile_ms: Optional[float] = None
                if native_batch is not None:
                    native_seconds = measure_h_time_batch(
                        native_batch, keys, repeats=repeats
                    )
                    module = synthesized.native_module
                    if module is not None:
                        compile_ms = module.compile_ms
                rows.append(
                    {
                        "key_type": spec.name,
                        "regex": spec.regex,
                        "key_length": spec.length,
                        "family": family.value,
                        "keys": len(keys),
                        "repeats": repeats,
                        "scalar_seconds": scalar_seconds,
                        "batch_seconds": batch_seconds,
                        "native_seconds": native_seconds,
                        "scalar_ns_per_key": _ns_per_key(
                            scalar_seconds, len(keys)
                        ),
                        "batch_ns_per_key": _ns_per_key(
                            batch_seconds, len(keys)
                        ),
                        "native_ns_per_key": (
                            _ns_per_key(native_seconds, len(keys))
                            if native_seconds is not None
                            else None
                        ),
                        "batch_speedup": (
                            scalar_seconds / batch_seconds
                            if batch_seconds > 0
                            else float("inf")
                        ),
                        "native_speedup": (
                            scalar_seconds / native_seconds
                            if native_seconds
                            else None
                        ),
                        "native_compile_ms": compile_ms,
                    }
                )
    from repro.bench.ledger import fingerprint

    return {
        "experiment": "batch_vs_scalar_h_time",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fingerprint": fingerprint(),
        "native_compiler": native_compiler,
        "native_unavailable_reason": native_reason,
        "keys_per_type": keys_per_type,
        "repeats": repeats,
        "rows": rows,
    }


def _ns_per_key(seconds: float, count: int) -> float:
    return seconds * 1e9 / count if count else 0.0


def best_speedup(report: Dict[str, Any]) -> float:
    """The largest batch-over-scalar factor across all rows."""
    speedups = [row["batch_speedup"] for row in report["rows"]]
    return max(speedups) if speedups else 0.0


def best_native_speedup(report: Dict[str, Any]) -> Optional[float]:
    """The largest native-over-scalar factor, or None when degraded."""
    speedups = [
        row["native_speedup"]
        for row in report["rows"]
        if row.get("native_speedup")
    ]
    return max(speedups) if speedups else None


def render_comparison(report: Dict[str, Any]) -> str:
    """Fixed-width text table of a :func:`compare_scalar_batch` report."""
    lines = [
        f"{'format':8s} {'family':8s} {'scalar ns/key':>14s} "
        f"{'batch ns/key':>13s} {'native ns/key':>14s} {'speedup':>8s}"
    ]
    for row in report["rows"]:
        native_ns = row.get("native_ns_per_key")
        native_cell = f"{native_ns:14.1f}" if native_ns is not None else (
            f"{'-':>14s}"
        )
        lines.append(
            f"{row['key_type']:8s} {row['family']:8s} "
            f"{row['scalar_ns_per_key']:14.1f} "
            f"{row['batch_ns_per_key']:13.1f} "
            f"{native_cell} "
            f"{row['batch_speedup']:7.2f}x"
        )
    lines.append(f"best batch speedup: {best_speedup(report):.2f}x")
    native_best = best_native_speedup(report)
    if native_best is not None:
        lines.append(f"best native speedup: {native_best:.2f}x")
        lines.append(
            f"native compiler: {report.get('native_compiler')}"
        )
    elif report.get("native_unavailable_reason"):
        lines.append(
            "native tier unavailable: "
            f"{report['native_unavailable_reason']}"
        )
    from repro.bench.report import fingerprint_block

    lines.append(
        fingerprint_block(
            repeats=report.get("repeats"),
            keys=report.get("keys_per_type"),
        )
    )
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write a comparison report as indented, key-stable JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> Optional[Dict[str, Any]]:
    """Read a previously written report; None when absent/unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None

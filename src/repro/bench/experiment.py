"""The experiment grid of Section 4.

The paper's driver is parameterized by container structure (4),
distribution (3), spread (3) and execution mode (batched plus three
interweaved probability mixes = 4), giving the paper's 144 experiments
per hash function and key type.  Each experiment runs 10,000
affectations, sampled ten times.

:func:`experiment_grid` materializes that grid; ``reduced=True`` keeps a
representative 12-cell slice so the pytest-benchmark scripts finish in
minutes while the full grid remains one flag away.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Sequence, Tuple, Type

from repro.containers import CONTAINER_TYPES
from repro.containers.base import HashTableBase
from repro.keygen.distributions import Distribution
from repro.keygen.driver import (
    ALLOWED_MIXES,
    DriverConfig,
    ExecutionMode,
    ProbabilityMix,
)
from repro.keygen.keyspec import KEY_TYPES, KeySpec

SPREADS = (500, 2000, 10_000)
"""The paper's three spread values."""

PAPER_AFFECTATIONS = 10_000
"""Affectations per experiment in the paper."""

PAPER_SAMPLES = 10
"""Samples per experiment in the paper (none discarded)."""


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of the grid, for one key format."""

    key_spec: KeySpec
    container_name: str
    distribution: Distribution
    spread: int
    mode: ExecutionMode
    mix: ProbabilityMix

    @property
    def container_type(self) -> Type[HashTableBase]:
        return CONTAINER_TYPES[self.container_name]

    def driver_config(
        self, affectations: int = PAPER_AFFECTATIONS, seed: int = 0
    ) -> DriverConfig:
        """Materialize the driver configuration for this cell."""
        return DriverConfig(
            key_spec=self.key_spec,
            distribution=self.distribution,
            container_type=self.container_type,
            mode=self.mode,
            mix=self.mix,
            affectations=affectations,
            spread=self.spread,
            seed=seed,
        )

    def label(self) -> str:
        """A short human-readable cell label for reports."""
        mode = (
            "batched"
            if self.mode is ExecutionMode.BATCHED
            else f"inter({self.mix.insert},{self.mix.search})"
        )
        return (
            f"{self.key_spec.name}/{self.container_name}/"
            f"{self.distribution.value}/s{self.spread}/{mode}"
        )


def _mode_variants() -> List[Tuple[ExecutionMode, ProbabilityMix]]:
    variants: List[Tuple[ExecutionMode, ProbabilityMix]] = [
        (ExecutionMode.BATCHED, ALLOWED_MIXES[0])
    ]
    variants.extend(
        (ExecutionMode.INTERWEAVED, mix) for mix in ALLOWED_MIXES
    )
    return variants


def experiment_grid(
    key_types: Optional[Sequence[str]] = None,
    reduced: bool = False,
) -> List[ExperimentSpec]:
    """The experiment grid, per key format.

    Args:
        key_types: format names to include (default: all eight).
        reduced: keep a 12-cell representative slice per format —
            ``unordered_map`` and ``unordered_multiset`` crossed with all
            three distributions, spread 2,000, batched and one
            interweaved mix — instead of the full 144.
    """
    names = list(key_types) if key_types is not None else list(KEY_TYPES)
    cells: List[ExperimentSpec] = []
    if reduced:
        containers = ("unordered_map", "unordered_multiset")
        modes = [
            (ExecutionMode.BATCHED, ALLOWED_MIXES[0]),
            (ExecutionMode.INTERWEAVED, ALLOWED_MIXES[0]),
        ]
        spreads: Tuple[int, ...] = (2000,)
    else:
        containers = tuple(CONTAINER_TYPES)
        modes = _mode_variants()
        spreads = SPREADS
    for name in names:
        spec = KEY_TYPES[name.upper()]
        for container_name in containers:
            for distribution in Distribution:
                for spread in spreads:
                    for mode, mix in modes:
                        cells.append(
                            ExperimentSpec(
                                key_spec=spec,
                                container_name=container_name,
                                distribution=distribution,
                                spread=spread,
                                mode=mode,
                                mix=mix,
                            )
                        )
    return cells


def grid_size_per_key_type(reduced: bool = False) -> int:
    """Number of cells per key format (144 full, 12 reduced)."""
    return len(experiment_grid(key_types=["SSN"], reduced=reduced))

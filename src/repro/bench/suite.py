"""Per-key-type hash suites: the ten functions of Table 1.

For a given key format, the suite contains:

- the four **synthetic** families, synthesized from the format's regex
  (``Naive``, ``OffXor``, ``Aes``, ``Pext``);
- the four **library** baselines (``STL``, ``FNV``, ``City``,
  ``Abseil``), format-independent;
- the two **generated** baselines: ``Gpt`` (per-format handwritten to
  the paper's prompt recipe) and ``Gperf`` (generated from 1,000 random
  keys of the format, like the paper's setup).

The optional ``arch="aarch64"`` drops Pext, matching Section 4.4: the
paper's Jetson has no bit-extract instruction.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List, Optional

from repro.core.plan import HashFamily
from repro.core.synthesis import synthesize
from repro.hashes import gperf
from repro.hashes.gpt import GPT_HASHES
from repro.hashes.registry import baseline_hashes
from repro.keygen.distributions import Distribution
from repro.keygen.generator import KeyGenerator
from repro.keygen.keyspec import KeySpec, key_spec

HashCallable = Callable[[bytes], int]

SYNTHETIC_NAMES = ("Naive", "OffXor", "Aes", "Pext")
"""Paper names of the synthetic families, in Figure 3 order."""

GPERF_TRAINING_KEYS = 1000
"""The paper feeds gperf 1,000 random keys (Section 4, baselines)."""

_FAMILY_BY_NAME = {
    "Naive": HashFamily.NAIVE,
    "OffXor": HashFamily.OFFXOR,
    "Aes": HashFamily.AES,
    "Pext": HashFamily.PEXT,
}


@lru_cache(maxsize=64)
def _cached_synthesis(regex: str, family_name: str) -> HashCallable:
    """Synthesis is deterministic per (format, family); cache across the
    many suite constructions a benchmark run performs."""
    return synthesize(regex, _FAMILY_BY_NAME[family_name]).function


def synthesize_suite(
    spec: KeySpec, arch: str = "x86"
) -> Dict[str, HashCallable]:
    """Synthesize the four families for one key format.

    On ``aarch64`` the Pext family is omitted (no ``bext`` on the
    evaluation hardware, Section 4.4).
    """
    names: List[str] = list(SYNTHETIC_NAMES)
    if arch == "aarch64":
        names.remove("Pext")
    return {name: _cached_synthesis(spec.regex, name) for name in names}


def make_gperf_hash(
    spec: KeySpec, seed: int = 0, training_keys: int = GPERF_TRAINING_KEYS
) -> HashCallable:
    """Generate the Gperf baseline for a format from random keys."""
    generator = KeyGenerator(spec, Distribution.UNIFORM, seed=seed)
    keywords = generator.distinct_pool(
        min(training_keys, spec.space_size)
    )
    return gperf.generate(keywords)


def make_hash_suite(
    key_type: str,
    arch: str = "x86",
    include: Optional[List[str]] = None,
    gperf_seed: int = 0,
) -> Dict[str, HashCallable]:
    """Build the full ten-function suite for one key format.

    Args:
        key_type: paper format name (``SSN``, ``MAC``, ...).
        arch: ``"x86"`` (all ten) or ``"aarch64"`` (drops Pext).
        include: optional subset of function names to build (saves the
            gperf generation cost when it is not needed).
        gperf_seed: seed for Gperf's random training keys.
    """
    spec = key_spec(key_type)
    suite: Dict[str, HashCallable] = {}
    wanted = set(include) if include is not None else None

    def is_wanted(name: str) -> bool:
        return wanted is None or name in wanted

    for name, named_hash in baseline_hashes().items():
        if name != "Polymur" and is_wanted(name):
            suite[name] = named_hash.function
    if is_wanted("Gpt"):
        suite["Gpt"] = GPT_HASHES[spec.name]
    if is_wanted("Gperf"):
        suite["Gperf"] = make_gperf_hash(spec, seed=gperf_seed)
    for name, function in synthesize_suite(spec, arch=arch).items():
        if is_wanted(name):
            suite[name] = function
    return suite


TABLE1_ORDER = (
    "Abseil",
    "Aes",
    "City",
    "FNV",
    "Gperf",
    "Gpt",
    "Naive",
    "OffXor",
    "Pext",
    "STL",
)
"""Row order of the paper's Table 1 (alphabetical)."""

"""Generated-code size analysis (the code-size half of RQ4).

Section 4.4 examines "running time and code size differences" across
architectures, and RQ6 notes Pext synthesis time is dominated by
printing fully unrolled machine instructions.  This module measures the
artifacts themselves: for each family, format and target, the size of
the generated C++ (bytes, lines, statements) and of the generated
Python, so the unrolling cost is visible as data.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.plan import HashFamily
from repro.core.synthesis import synthesize
from repro.errors import SynthesisError
from repro.keygen.keyspec import KEY_TYPES


def _statement_count(source: str) -> int:
    """Count C++/Python statements: non-empty, non-brace, non-comment
    lines — a compiler-agnostic proxy for emitted instruction count."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped in "{}":
            continue
        if stripped.startswith(("//", "#", '"""')):
            continue
        count += 1
    return count


def measure_code_size(
    key_types: Sequence[str] = ("SSN", "MAC", "IPV6", "INTS"),
    families: Optional[Sequence[HashFamily]] = None,
) -> List[Dict[str, object]]:
    """Generated-code sizes per (format, family, target).

    Returns renderable rows with byte counts and statement counts for
    x86 C++, aarch64 C++ (where the family exists there), and the
    executable Python.
    """
    chosen = list(families) if families is not None else list(HashFamily)
    rows: List[Dict[str, object]] = []
    for name in key_types:
        spec = KEY_TYPES[name.upper()]
        for family in chosen:
            synthesized = synthesize(spec.regex, family)
            cpp_x86 = synthesized.cpp_source("x86")
            try:
                cpp_arm: Optional[str] = synthesized.cpp_source("aarch64")
            except SynthesisError:
                cpp_arm = None
            rows.append(
                {
                    "format": name,
                    "family": family.value,
                    "loads": len(synthesized.plan.loads),
                    "x86 bytes": len(cpp_x86),
                    "x86 stmts": _statement_count(cpp_x86),
                    "aarch64 bytes": (
                        len(cpp_arm) if cpp_arm is not None else 0
                    ),
                    "python stmts": _statement_count(
                        synthesized.python_source
                    ),
                }
            )
    return rows


def size_scaling(
    exponents: Sequence[int] = tuple(range(4, 13)),
    family: HashFamily = HashFamily.PEXT,
) -> List[Dict[str, object]]:
    """Generated-code size vs key size for all-digit formats.

    The data behind the RQ6 observation: Pext's synthesis time grows
    fastest because its emitted code does — every extraction is printed
    unrolled.
    """
    rows: List[Dict[str, object]] = []
    for exponent in exponents:
        size = 1 << exponent
        synthesized = synthesize(f"[0-9]{{{size}}}", family)
        cpp = synthesized.cpp_source("x86")
        rows.append(
            {
                "key bytes": size,
                "loads": len(synthesized.plan.loads),
                "cpp bytes": len(cpp),
                "cpp stmts": _statement_count(cpp),
                "python stmts": _statement_count(
                    synthesized.python_source
                ),
            }
        )
    return rows

"""Measurement primitives: B-Time, H-Time, and experiment execution.

Terminology follows Section 4.1:

- **B-Time** — wall-clock time of the full affectation loop: hashing plus
  container bookkeeping.  Measured by :func:`measure_b_time` via the
  driver.
- **H-Time** — time spent purely converting keys to 64-bit values.
  Measured by :func:`measure_h_time`: a tight loop hashing a fixed key
  sample (the paper's "10,000 activations of the hash function").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.experiment import ExperimentSpec
from repro.codegen.batch import BatchHashCallable
from repro.keygen.driver import AffectationResult, run_driver
from repro.obs import capture_spans
from repro.obs.report import span_breakdown
from repro.obs.trace import span

HashCallable = Callable[[bytes], int]


def _empty_loop_seconds(keys: Sequence[bytes], repeats: int) -> float:
    """Best-of-``repeats`` time of the bare measurement loop.

    The calibration loop iterates the same key list with a no-op body,
    so subtracting it from a measurement leaves only per-key hashing
    work.  Without this, sub-microsecond specialized hashes are
    dominated by interpreter loop overhead and reported figures
    understate their advantage.
    """
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _key in keys:
            pass
        best = min(best, time.perf_counter() - started)
    return best


def measure_h_time(
    hash_function: HashCallable,
    keys: Sequence[bytes],
    repeats: int = 1,
    calibrate: bool = True,
) -> float:
    """Seconds to hash every key in ``keys``, ``repeats`` times.

    The loop itself is deliberately minimal (a local-variable function
    reference over a pre-built list), so differences between functions
    reflect hashing work, not harness overhead.  With ``calibrate``
    (the default) the best empty-loop time over the same keys is
    measured and subtracted, removing the residual iteration overhead
    from the figure; the result is clamped at zero.
    """
    if not keys:
        raise ValueError("H-Time needs at least one key")
    function = hash_function
    best = float("inf")
    repeats = max(repeats, 1)
    # The span wraps the repeat loop, never a single call: with tracing
    # off this is one no-op context manager per measurement; with it on,
    # the measured loop body is still untouched.
    with span("bench.h_time", keys=len(keys), repeats=repeats):
        for _ in range(repeats):
            started = time.perf_counter()
            for key in keys:
                function(key)
            elapsed = time.perf_counter() - started
            best = min(best, elapsed)
        if calibrate:
            best = max(best - _empty_loop_seconds(keys, repeats), 0.0)
    return best


def measure_h_time_batch(
    batch_function: BatchHashCallable,
    keys: Sequence[bytes],
    repeats: int = 1,
) -> float:
    """Seconds for one ``hash_many(keys)`` call, best of ``repeats``.

    No calibration pass is subtracted: the batch kernel owns its loop,
    so the single timed call *is* the per-key work plus one constant
    call overhead — the quantity batch H-Time is meant to report.
    Compare against :func:`measure_h_time` of the scalar form on the
    same keys for the amortization factor.
    """
    if not keys:
        raise ValueError("H-Time needs at least one key")
    function = batch_function
    best = float("inf")
    repeats = max(repeats, 1)
    with span("bench.h_time_batch", keys=len(keys), repeats=repeats):
        for _ in range(repeats):
            started = time.perf_counter()
            function(keys)
            elapsed = time.perf_counter() - started
            best = min(best, elapsed)
    return best


def measure_b_time(
    hash_function: HashCallable,
    spec: ExperimentSpec,
    samples: int = 3,
    affectations: int = 10_000,
) -> List[AffectationResult]:
    """Run one experiment cell ``samples`` times.

    Matches the paper's sampling: every sample is kept (none discarded
    for warm-up).  Seeds differ per sample so key pools differ, as fresh
    driver runs would.
    """
    results = []
    with span("bench.b_time", cell=spec.label(), samples=samples):
        for sample in range(samples):
            config = spec.driver_config(
                affectations=affectations, seed=sample
            )
            with span("bench.sample", sample=sample):
                results.append(run_driver(hash_function, config))
    return results


@dataclass
class ExperimentResult:
    """Aggregated outcome of one (hash, cell) pair.

    ``span_breakdown`` is populated when the experiment ran with span
    collection (see :func:`run_experiment`): per-span-name call counts
    and total wall/CPU seconds, e.g. how much of the cell went to
    ``bench.sample`` runs versus harness overhead.
    """

    spec: ExperimentSpec
    hash_name: str
    b_times: List[float]
    bucket_collisions: List[int]
    true_collisions: List[int]
    span_breakdown: Optional[Dict[str, Dict[str, float]]] = field(
        default=None, compare=False
    )

    @property
    def mean_b_time(self) -> float:
        return sum(self.b_times) / len(self.b_times)


def run_experiment(
    hash_functions: Dict[str, HashCallable],
    spec: ExperimentSpec,
    samples: int = 3,
    affectations: int = 10_000,
    collect_spans: bool = False,
) -> List[ExperimentResult]:
    """Run one cell for every function in a suite.

    Args:
        collect_spans: when True, tracing is enabled around each
            function's runs and the aggregated span breakdown is
            attached to its :class:`ExperimentResult`.  Off by default;
            the measured loops see no per-call events either way.
    """
    results: List[ExperimentResult] = []
    for name, function in hash_functions.items():
        breakdown: Optional[Dict[str, Dict[str, float]]] = None
        if collect_spans:
            with capture_spans() as sink:
                runs = measure_b_time(
                    function,
                    spec,
                    samples=samples,
                    affectations=affectations,
                )
            breakdown = span_breakdown(sink.records())
        else:
            runs = measure_b_time(
                function, spec, samples=samples, affectations=affectations
            )
        results.append(
            ExperimentResult(
                spec=spec,
                hash_name=name,
                b_times=[run.elapsed_seconds for run in runs],
                bucket_collisions=[run.bucket_collisions for run in runs],
                true_collisions=[run.true_collisions for run in runs],
                span_breakdown=breakdown,
            )
        )
    return results


def run_grid(
    hash_functions: Dict[str, HashCallable],
    cells: Sequence[ExperimentSpec],
    samples: int = 3,
    affectations: int = 10_000,
) -> Dict[str, List[ExperimentResult]]:
    """Run many cells; results grouped by hash name."""
    grouped: Dict[str, List[ExperimentResult]] = {
        name: [] for name in hash_functions
    }
    for cell in cells:
        for result in run_experiment(
            hash_functions, cell, samples=samples, affectations=affectations
        ):
            grouped[result.hash_name].append(result)
    return grouped

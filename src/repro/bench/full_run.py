"""One-shot orchestration of the complete paper evaluation.

``run_all`` regenerates every table and figure at a chosen scale and
writes the text reports to a directory, giving a single entry point for
"reproduce the paper" (``sepe bench full``).  Scales:

- ``smoke`` — one format, hundreds of affectations; seconds.  For CI.
- ``reduced`` — the benchmark suite's defaults; minutes.
- ``paper`` — all 8 formats, 10 samples, 10,000 affectations, 100,000
  uniformity keys; hours on CPython.  The paper's own scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.bench import figures, tables
from repro.bench.code_size import measure_code_size
from repro.bench.report import (
    render_boxplot,
    render_series,
    render_table,
)
from repro.keygen.keyspec import KEY_TYPES


@dataclass(frozen=True)
class Scale:
    """Knob bundle for one evaluation scale."""

    name: str
    key_types: Sequence[str]
    samples: int
    affectations: int
    collision_keys: int
    uniformity_keys: int
    size_exponents: Sequence[int]


SCALES: Dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        key_types=("SSN",),
        samples=1,
        affectations=400,
        collision_keys=400,
        uniformity_keys=3000,
        size_exponents=(4, 6, 8),
    ),
    "reduced": Scale(
        name="reduced",
        key_types=("SSN", "MAC", "IPV6", "URL1"),
        samples=2,
        affectations=2000,
        collision_keys=2000,
        uniformity_keys=20_000,
        size_exponents=tuple(range(4, 13)),
    ),
    "paper": Scale(
        name="paper",
        key_types=tuple(KEY_TYPES),
        samples=10,
        affectations=10_000,
        collision_keys=10_000,
        uniformity_keys=100_000,
        size_exponents=tuple(range(4, 15)),
    ),
}


def run_all(
    scale: str = "smoke",
    out_dir: str = "benchmarks/out",
    progress: Callable[[str], None] = lambda message: None,
) -> Dict[str, str]:
    """Regenerate every artifact at ``scale``; returns name → report text.

    Reports are also written to ``out_dir`` as ``<name>.txt``.

    Raises:
        KeyError: for an unknown scale name.
    """
    if scale not in SCALES:
        known = ", ".join(SCALES)
        raise KeyError(f"unknown scale {scale!r}; known: {known}")
    knobs = SCALES[scale]
    reports: Dict[str, str] = {}

    def emit(name: str, text: str) -> None:
        reports[name] = text
        os.makedirs(out_dir, exist_ok=True)
        with open(
            os.path.join(out_dir, f"{name}.txt"), "w", encoding="utf-8"
        ) as handle:
            handle.write(text)
        progress(name)

    emit(
        "table1",
        render_table(
            tables.table1(
                key_types=knobs.key_types,
                samples=knobs.samples,
                affectations=knobs.affectations,
                collision_keys=knobs.collision_keys,
                h_time_keys=knobs.collision_keys,
            ),
            title=f"Table 1 ({knobs.name} scale)",
        ),
    )
    emit(
        "table2",
        render_table(
            tables.table2(
                key_types=knobs.key_types,
                keys_per_type=knobs.uniformity_keys,
            ),
            title=f"Table 2 ({knobs.name} scale)",
        ),
    )
    emit(
        "table3",
        render_table(
            tables.table3(
                key_types=knobs.key_types,
                samples=knobs.samples,
                affectations=knobs.affectations,
                collision_keys=knobs.collision_keys,
            ),
            title=f"Table 3 ({knobs.name} scale)",
        ),
    )
    emit(
        "figure13",
        render_boxplot(
            figures.figure13(
                key_types=knobs.key_types,
                samples=knobs.samples,
                affectations=knobs.affectations,
                reduced_grid=(scale != "paper"),
            ),
            title=f"Figure 13 ({knobs.name} scale)",
            unit="ms",
            scale=1000,
        ),
    )
    emit(
        "figure15",
        render_boxplot(
            figures.figure15(
                key_types=knobs.key_types,
                samples=knobs.samples,
                affectations=knobs.affectations,
                reduced_grid=(scale != "paper"),
            ),
            title=f"Figure 15 aarch64 ({knobs.name} scale)",
            unit="ms",
            scale=1000,
        ),
    )
    emit(
        "figure16",
        render_series(
            figures.figure16(exponents=knobs.size_exponents, repeats=2),
            title=f"Figure 16 ({knobs.name} scale)",
            x_label="key bytes",
            y_label="family",
        ),
    )
    bucket_series, true_series = figures.figure17_18(
        key_types=knobs.key_types[:2],
        keys_per_type=knobs.collision_keys,
    )
    emit(
        "figure17",
        render_series(
            {k: [(x, float(y)) for x, y in v]
             for k, v in bucket_series.items()},
            title=f"Figure 17 ({knobs.name} scale)",
            x_label="discarded bits",
        ),
    )
    emit(
        "figure18",
        render_series(
            {k: [(x, float(y)) for x, y in v]
             for k, v in true_series.items()},
            title=f"Figure 18 ({knobs.name} scale)",
            x_label="discarded bits",
        ),
    )
    emit(
        "figure19",
        render_series(
            figures.figure19(
                exponents=knobs.size_exponents,
                keys_per_size=max(knobs.collision_keys // 20, 20),
            ),
            title=f"Figure 19 ({knobs.name} scale)",
            x_label="key bytes",
        ),
    )
    emit(
        "figure20",
        render_boxplot(
            figures.figure20(
                key_types=knobs.key_types[:2],
                samples=knobs.samples,
                affectations=knobs.affectations,
            ),
            title=f"Figure 20 ({knobs.name} scale)",
            unit="ms",
            scale=1000,
        ),
    )
    emit(
        "code_size",
        render_table(
            measure_code_size(key_types=knobs.key_types),
            title=f"Generated code size ({knobs.name} scale)",
        ),
    )
    return reports

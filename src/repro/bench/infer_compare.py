"""Reference-vs-fast inference comparison: the ``BENCH_infer.json`` source.

Quantifies the headline claim of the bitwise-parallel inference engine:
the reference ``keybuilder`` join performs four Python-level lattice
joins per byte per key, while the fast engine folds whole keys with two
machine operations (``diff |= key ^ key0``) — big-int words or NumPy
column reductions.  Every row times one engine on the same corpus
against the reference :func:`repro.core.quads.join_keys` and records
both the speedup and a byte-for-byte parity verdict, so the committed
artifact is simultaneously a perf trajectory and a correctness witness.

Used by ``benchmarks/bench_infer.py`` (the CI smoke-bench that uploads
``BENCH_infer.json``).
"""

from __future__ import annotations

import json
import platform
import random
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.fast_infer import (
    PatternAccumulator,
    join_keys_bigint,
    join_keys_numpy,
    numpy_available,
)
from repro.core.quads import Quad, join_keys
from repro.obs.trace import span

_HEX = b"0123456789abcdef"

_ACCUMULATOR_CHUNK = 8192
"""Chunk size for the streaming-accumulator row (models file streaming)."""


def make_corpus(
    num_keys: int,
    key_len: int = 16,
    seed: int = 0,
    variable: bool = False,
) -> List[bytes]:
    """A deterministic keybuilder corpus with real constant structure.

    Keys carry a constant ``id-`` prefix and a constant ``:`` separator
    with hex payload bytes, so the join produces a mix of concrete and ⊤
    quads — the shape the engine must handle, not a degenerate all-⊤
    corpus.  ``variable=True`` trims up to 4 trailing bytes per key to
    exercise the ⊤-padded variable-length path.
    """
    rng = random.Random(seed)
    prefix = b"id-"
    body = key_len - len(prefix) - 1
    if body < 1:
        raise ValueError(f"key_len too small: {key_len}")
    keys = []
    for _ in range(num_keys):
        payload = bytes(rng.choice(_HEX) for _ in range(body))
        key = prefix + payload[: body // 2] + b":" + payload[body // 2 :]
        if variable:
            key = key[: len(key) - rng.randint(0, 4)]
        keys.append(key)
    return keys


def _time_engine(
    run: Callable[[], Any], repeats: int
) -> float:
    """Best-of-``repeats`` wall time of one engine invocation."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _accumulator_join(keys: Sequence[bytes]) -> List[Quad]:
    """Streaming row: fold the corpus through chunked accumulator updates."""
    accumulator = PatternAccumulator()
    for start in range(0, len(keys), _ACCUMULATOR_CHUNK):
        accumulator.update(keys[start : start + _ACCUMULATOR_CHUNK])
    return accumulator.joined_quads()


def _parallel_join(keys: Sequence[bytes], jobs: int) -> List[Quad]:
    """Sharded row: the multi-core driver, reduced back to quads."""
    from repro.core.fast_infer import infer_pattern_parallel

    return list(infer_pattern_parallel(keys, jobs=jobs).quads)


def compare_infer(
    num_keys: int = 100_000,
    key_len: int = 16,
    repeats: int = 3,
    seed: int = 0,
    jobs: Optional[int] = 2,
) -> Dict[str, Any]:
    """Time every inference engine against the reference join.

    Two corpora are measured: the headline fixed-length corpus
    (``num_keys`` × ``key_len`` bytes) and a variable-length variant
    that exercises ⊤-padding and prefix truncation.  Returns a
    JSON-ready report; each row carries absolute seconds, ns/key, the
    speedup over the reference join on the same corpus, and whether the
    engine's output matched the reference byte for byte.
    """
    from repro.bench.ledger import fingerprint

    report: Dict[str, Any] = {
        "benchmark": "infer_compare",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "fingerprint": fingerprint(),
        "numpy": numpy_available(),
        "params": {
            "num_keys": num_keys,
            "key_len": key_len,
            "repeats": repeats,
            "seed": seed,
            "jobs": jobs,
        },
        "corpora": [],
    }
    corpora = [
        ("fixed", make_corpus(num_keys, key_len, seed=seed)),
        (
            "variable",
            make_corpus(num_keys, key_len, seed=seed + 1, variable=True),
        ),
    ]
    with span("bench.infer_compare", keys=num_keys, key_len=key_len):
        for name, keys in corpora:
            reference = join_keys(keys)
            reference_seconds = _time_engine(
                lambda: join_keys(keys), repeats
            )
            rows: List[Dict[str, Any]] = [
                _row("reference", reference_seconds, reference_seconds,
                     len(keys), parity=True)
            ]
            engines: List[Any] = [
                ("bigint", lambda: join_keys_bigint(keys)),
                ("accumulator", lambda: _accumulator_join(keys)),
            ]
            if numpy_available() and name == "fixed":
                engines.append(("numpy", lambda: join_keys_numpy(keys)))
            if jobs and jobs > 1:
                engines.append(
                    ("parallel", lambda: _parallel_join(keys, jobs))
                )
            for engine_name, run in engines:
                seconds = _time_engine(run, repeats)
                rows.append(
                    _row(
                        engine_name,
                        seconds,
                        reference_seconds,
                        len(keys),
                        parity=run() == reference,
                    )
                )
            report["corpora"].append(
                {
                    "name": name,
                    "keys": len(keys),
                    "key_len": key_len,
                    "rows": rows,
                }
            )
    report["best_speedup"] = best_speedup(report)
    report["all_parity"] = all(
        row["parity"]
        for corpus in report["corpora"]
        for row in corpus["rows"]
    )
    return report


def _row(
    engine: str,
    seconds: float,
    reference_seconds: float,
    num_keys: int,
    parity: bool,
) -> Dict[str, Any]:
    return {
        "engine": engine,
        "seconds": seconds,
        "ns_per_key": seconds * 1e9 / num_keys if num_keys else 0.0,
        "speedup_vs_reference": (
            reference_seconds / seconds if seconds else float("inf")
        ),
        "parity": parity,
    }


def best_speedup(report: Dict[str, Any]) -> float:
    """Largest parity-clean speedup on the headline fixed-length corpus."""
    best = 0.0
    for corpus in report["corpora"]:
        if corpus["name"] != "fixed":
            continue
        for row in corpus["rows"]:
            if row["engine"] != "reference" and row["parity"]:
                best = max(best, row["speedup_vs_reference"])
    return best


def render_comparison(report: Dict[str, Any]) -> str:
    """Human-readable table of the comparison report."""
    lines = [
        f"inference engines, {report['params']['num_keys']} keys x "
        f"{report['params']['key_len']}B "
        f"(best of {report['params']['repeats']}):"
    ]
    for corpus in report["corpora"]:
        lines.append(f"  corpus {corpus['name']} ({corpus['keys']} keys):")
        for row in corpus["rows"]:
            lines.append(
                f"    {row['engine']:12s} {row['seconds'] * 1000:9.2f} ms  "
                f"{row['ns_per_key']:9.1f} ns/key  "
                f"{row['speedup_vs_reference']:7.1f}x  "
                f"parity={'ok' if row['parity'] else 'FAIL'}"
            )
    lines.append(
        f"  best fixed-corpus speedup: {report['best_speedup']:.1f}x"
    )
    from repro.bench.report import fingerprint_block

    lines.append(
        fingerprint_block(
            repeats=report["params"].get("repeats"),
            keys=report["params"].get("num_keys"),
        )
    )
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: str) -> None:
    """Persist the report as indented JSON (the committed artifact)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

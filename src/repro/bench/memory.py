"""Memory accounting for hash containers.

The bijective containers' pitch is not only fewer compares but fewer
bytes: no key storage.  ``sys.getsizeof`` alone misses nested structure,
so :func:`container_footprint` walks buckets, nodes, keys and values and
sums their footprints (shared objects counted once by id).
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Set


def _deep_size(obj: Any, seen: Set[int]) -> int:
    identity = id(obj)
    if identity in seen:
        return 0
    seen.add(identity)
    total = sys.getsizeof(obj)
    if isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            total += _deep_size(item, seen)
    elif isinstance(obj, dict):
        for key, value in obj.items():
            total += _deep_size(key, seen)
            total += _deep_size(value, seen)
    return total


def container_footprint(table: Any) -> Dict[str, int]:
    """Byte footprint of a chained hash container.

    Works for any object exposing ``_buckets`` (the containers in
    :mod:`repro.containers`); returns totals plus a key-bytes breakdown
    so the key-less saving of ``BijectiveMap`` is directly visible.

    Raises:
        TypeError: for objects without a ``_buckets`` attribute.
    """
    buckets = getattr(table, "_buckets", None)
    if buckets is None:
        raise TypeError(
            f"{type(table).__name__} does not expose chained buckets"
        )
    seen: Set[int] = set()
    total = _deep_size(buckets, seen)
    key_bytes = 0
    node_count = 0
    for bucket in buckets:
        for node in bucket:
            node_count += 1
            for field in node:
                if isinstance(field, (bytes, bytearray)):
                    key_bytes += len(field)
    return {
        "total_bytes": total,
        "key_payload_bytes": key_bytes,
        "nodes": node_count,
        "buckets": len(buckets),
    }


def footprint_comparison(reference: Any, specialized: Any) -> Dict[str, object]:
    """Side-by-side footprints with the savings ratio."""
    ref = container_footprint(reference)
    spec = container_footprint(specialized)
    return {
        "reference_bytes": ref["total_bytes"],
        "specialized_bytes": spec["total_bytes"],
        "saved_bytes": ref["total_bytes"] - spec["total_bytes"],
        "saved_fraction": (
            (ref["total_bytes"] - spec["total_bytes"]) / ref["total_bytes"]
            if ref["total_bytes"]
            else 0.0
        ),
        "reference_key_bytes": ref["key_payload_bytes"],
        "specialized_key_bytes": spec["key_payload_bytes"],
    }

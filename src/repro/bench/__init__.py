"""The benchmark harness: everything needed to regenerate the paper's
tables and figures.

- :mod:`repro.bench.metrics` — geometric means, collision counts,
  chi-square uniformity, Mann-Whitney U tests.
- :mod:`repro.bench.suite` — builds the per-key-type set of ten hash
  functions (four synthetic families + six baselines) of Table 1.
- :mod:`repro.bench.experiment` — the 144-cell experiment grid
  (4 containers x 3 distributions x 3 spreads x 4 scheduling modes).
- :mod:`repro.bench.runner` — B-Time / H-Time / collision measurement.
- :mod:`repro.bench.tables` — Tables 1, 2 and 3.
- :mod:`repro.bench.figures` — Figures 13 through 20.
- :mod:`repro.bench.report` — plain-text rendering of results.
- :mod:`repro.bench.ledger` — the committed regression ledger:
  normalized entries, noise-aware comparison, perf trajectory.

Scale: the paper runs each experiment ten times at 10,000 affectations.
Every function here exposes ``samples``/``affectations``/``keys`` knobs;
the benchmark scripts default to reduced sizes that finish on a laptop
and document the paper-scale values.
"""

from repro.bench.code_size import measure_code_size
from repro.bench.experiment import ExperimentSpec, experiment_grid
from repro.bench.full_run import run_all
from repro.bench.ledger import (
    LedgerEntry,
    Verdict,
    compare_entries,
    compare_ledger,
    collect_smoke_entries,
    fingerprint,
    load_ledger,
    render_verdicts,
    update_ledger,
    write_ledger,
)
from repro.bench.memory import container_footprint
from repro.bench.significance import p_value_matrix
from repro.bench.metrics import (
    chi_square_uniformity,
    geometric_mean,
    mann_whitney_u,
    total_collisions,
)
from repro.bench.runner import (
    measure_b_time,
    measure_h_time,
    run_experiment,
)
from repro.bench.suite import SYNTHETIC_NAMES, make_hash_suite

__all__ = [
    "ExperimentSpec",
    "LedgerEntry",
    "SYNTHETIC_NAMES",
    "Verdict",
    "chi_square_uniformity",
    "collect_smoke_entries",
    "compare_entries",
    "compare_ledger",
    "container_footprint",
    "experiment_grid",
    "fingerprint",
    "geometric_mean",
    "load_ledger",
    "make_hash_suite",
    "mann_whitney_u",
    "measure_b_time",
    "measure_code_size",
    "measure_h_time",
    "p_value_matrix",
    "render_verdicts",
    "run_all",
    "run_experiment",
    "total_collisions",
    "update_ledger",
    "write_ledger",
]

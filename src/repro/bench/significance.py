"""Pairwise significance testing of B-Time samples (Mann-Whitney U).

The paper backs every "statistically equivalent" / "significantly
different" statement with Mann-Whitney U tests: OffXor vs Naive
p = 0.51, City vs STL p = 0.44, synthetics vs STL significant.  This
module computes the full pairwise p-value matrix over the box-plot
samples so those claims are checkable from one artifact.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.metrics import mann_whitney_u

ALPHA = 0.05
"""Conventional significance threshold used in the paper's claims."""


def p_value_matrix(
    series: Dict[str, Sequence[float]]
) -> Dict[str, Dict[str, float]]:
    """Two-sided Mann-Whitney p-values for every function pair.

    The matrix is symmetric with 1.0 on the diagonal (a sample is
    trivially indistinguishable from itself).
    """
    names = sorted(series)
    matrix: Dict[str, Dict[str, float]] = {name: {} for name in names}
    for index, name_a in enumerate(names):
        matrix[name_a][name_a] = 1.0
        for name_b in names[index + 1 :]:
            p_value = mann_whitney_u(series[name_a], series[name_b])
            matrix[name_a][name_b] = p_value
            matrix[name_b][name_a] = p_value
    return matrix


def equivalent_pairs(
    series: Dict[str, Sequence[float]], alpha: float = ALPHA
) -> List[tuple]:
    """Pairs the test cannot distinguish at level ``alpha``."""
    matrix = p_value_matrix(series)
    names = sorted(series)
    return [
        (name_a, name_b, matrix[name_a][name_b])
        for index, name_a in enumerate(names)
        for name_b in names[index + 1 :]
        if matrix[name_a][name_b] >= alpha
    ]


def significant_pairs(
    series: Dict[str, Sequence[float]], alpha: float = ALPHA
) -> List[tuple]:
    """Pairs with a statistically significant timing difference."""
    matrix = p_value_matrix(series)
    names = sorted(series)
    return [
        (name_a, name_b, matrix[name_a][name_b])
        for index, name_a in enumerate(names)
        for name_b in names[index + 1 :]
        if matrix[name_a][name_b] < alpha
    ]


def matrix_rows(
    series: Dict[str, Sequence[float]]
) -> List[Dict[str, object]]:
    """The matrix as renderable rows for :mod:`repro.bench.report`."""
    matrix = p_value_matrix(series)
    names = sorted(series)
    rows = []
    for name in names:
        row: Dict[str, object] = {"vs": name}
        for other in names:
            row[other] = matrix[name][other]
        rows.append(row)
    return rows

"""Perfect-tier comparison: certified lookups vs gperf/FNV/paper families.

The measurement engine behind ``benchmarks/bench_perfect.py`` and the
ledger's perfect smoke sample.  For one closed key set it races every
variant on the *same* keys:

- **perfect** — the certified plan from
  :func:`repro.perfect.synthesize_perfect`, container lookups on the
  ``perfect=True`` fast path (hash equality only; soundness is the
  exhaustive :class:`~repro.perfect.PerfectCertificate`).
- **gperf** — the mini-gperf baseline trained on the same closed set.
- **fnv** — FNV-1a, the classic general-purpose byte loop.
- **naive / offxor / aes / pext** — the paper families synthesized for
  the set's inferred format (open-set hashes: no certificate, so their
  lookups pay the key equality probe).

Two figures per (set, variant): H-Time ns/key (scalar hash loop over
the whole set) and lookup ns/key (``UnorderedSet.find`` over every key
on a pre-built table), each with per-repeat samples for noise-aware
ledger verdicts.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.runner import measure_h_time
from repro.containers import UnorderedSet
from repro.core.inference import infer_pattern
from repro.core.plan import HashFamily
from repro.core.synthesis import synthesize
from repro.errors import SepeError
from repro.hashes.fnv import fnv1a_64
from repro.hashes.gperf import generate as gperf_generate
from repro.perfect import (
    BUILTIN_KEY_SET_NAMES,
    builtin_key_set,
    rq_closed_set,
    synthesize_perfect,
)

RQ_SETS = ("SSN", "MAC")
"""Paper RQ formats sampled as closed sets for the committed artifact."""


def _measure_lookup(
    table: UnorderedSet, keys: Sequence[bytes], repeats: int
) -> List[float]:
    """ns/key samples for ``find`` over every key, one pass per repeat."""
    find = table.find
    scale = 1e9 / len(keys)
    samples: List[float] = []
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        for key in keys:
            find(key)
        samples.append((time.perf_counter() - start) * scale)
    return samples


def _measure_variant(
    name: str,
    hash_function: Callable[[bytes], int],
    keys: Sequence[bytes],
    repeats: int,
    perfect: bool = False,
) -> Dict[str, object]:
    scale = 1e9 / len(keys)
    h_samples = [
        measure_h_time(hash_function, keys, repeats=1) * scale
        for _ in range(max(repeats, 1))
    ]
    table = UnorderedSet(hash_function, perfect=perfect)
    table.insert_many(keys)
    lookup_samples = _measure_lookup(table, keys, repeats)
    return {
        "variant": name,
        "h_ns_per_key": min(h_samples),
        "lookup_ns_per_key": min(lookup_samples),
        "samples_h": h_samples,
        "samples_lookup": lookup_samples,
        "repeats": max(repeats, 1),
        "fast_path": perfect,
    }


def measure_key_set(
    label: str,
    keys: Sequence[bytes],
    repeats: int = 5,
) -> Dict[str, object]:
    """All variants over one closed key set, plus the certificate."""
    keys = list(keys)
    perfect = synthesize_perfect(keys)
    rows: List[Dict[str, object]] = [
        _measure_variant(
            "perfect",
            perfect.container_function,
            keys,
            repeats,
            perfect=True,
        )
    ]
    gperf = gperf_generate(keys)
    rows.append(_measure_variant("gperf", gperf, keys, repeats))
    rows.append(_measure_variant("fnv", fnv1a_64, keys, repeats))
    pattern = infer_pattern(keys)
    for family in HashFamily:
        try:
            synthesized = synthesize(pattern, family)
        except SepeError:
            continue  # family refuses this format (e.g. AES width rules)
        rows.append(
            _measure_variant(
                family.value, synthesized.function, keys, repeats
            )
        )
    return {
        "key_set": label,
        "key_count": len(keys),
        "key_width": max(len(key) for key in keys),
        "certificate": perfect.certificate.to_dict(),
        "gperf_table_size": gperf.table_size,
        "gperf_perfect_on_train": gperf.is_perfect_on_keywords(),
        "rows": rows,
    }


def measure(
    rq_count: int = 1000,
    repeats: int = 5,
    seed: int = 0,
    rq_sets: Sequence[str] = RQ_SETS,
) -> Dict[str, object]:
    """The full perfect report: built-in fixtures + RQ closed samples."""
    sets: List[Tuple[str, Sequence[bytes]]] = [
        (name, builtin_key_set(name)) for name in BUILTIN_KEY_SET_NAMES
    ]
    sets.extend(
        (name.lower(), rq_closed_set(name, count=rq_count, seed=seed))
        for name in rq_sets
    )
    return {
        "benchmark": "perfect",
        "params": {
            "rq_count": rq_count,
            "repeats": repeats,
            "seed": seed,
        },
        "key_sets": [
            measure_key_set(label, keys, repeats=repeats)
            for label, keys in sets
        ],
    }


def render(report: Dict[str, object]) -> str:
    lines: List[str] = []
    for entry in report["key_sets"]:
        certificate = entry["certificate"]
        lines.append(
            f"{entry['key_set']}: {entry['key_count']} keys x "
            f"{entry['key_width']}B -> {certificate['hash_bits']}-bit "
            f"perfect hash (load {certificate['load_factor']:.3f}, "
            f"strategy {certificate['strategy'] or 'structural'})"
        )
        for row in entry["rows"]:
            fast = "  [fast path]" if row["fast_path"] else ""
            lines.append(
                f"  {row['variant']:8s} H-Time {row['h_ns_per_key']:8.1f} "
                f"ns/key   lookup {row['lookup_ns_per_key']:8.1f} "
                f"ns/key{fast}"
            )
    return "\n".join(lines)


def _lookup_ns(entry: Dict[str, object], variant: str) -> Optional[float]:
    for row in entry["rows"]:
        if row["variant"] == variant:
            return row["lookup_ns_per_key"]
    return None


def perfect_beats_gperf(report: Dict[str, object]) -> List[str]:
    """RQ key sets where the certified lookup beats the gperf lookup."""
    winners = []
    rq_labels = {name.lower() for name in RQ_SETS}
    for entry in report["key_sets"]:
        if entry["key_set"] not in rq_labels:
            continue
        ours = _lookup_ns(entry, "perfect")
        theirs = _lookup_ns(entry, "gperf")
        if ours is not None and theirs is not None and ours < theirs:
            winners.append(entry["key_set"])
    return winners

"""Plain-text rendering of tables and figure series.

Keeps formatting concerns out of the measurement code: tables are lists
of dicts, figure series are name → samples or name → (x, y) points, and
this module turns either into aligned monospace text for benchmark
output and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.metrics import summarize

Number = Union[int, float]


def fingerprint_block(
    repeats: Optional[int] = None,
    keys: Optional[int] = None,
) -> str:
    """Measurement-context footer for benchmark output.

    Every rendered report should state *where* its numbers came from —
    machine architecture, interpreter, and the repeat/key counts — so a
    figure pasted into an issue or EXPERIMENTS.md carries its own
    comparability caveat.  Uses the same fingerprint the regression
    ledger gates on (:func:`repro.bench.ledger.fingerprint`).
    """
    from repro.bench.ledger import fingerprint

    context = fingerprint()
    parts = [
        f"machine: {context['machine']}/{context['system']}",
        f"python: {context['python_implementation']} "
        f"{context['python_version']}",
    ]
    if context.get("processor"):
        parts.insert(1, f"cpu: {context['processor']}")
    if repeats is not None:
        parts.append(f"repeats: {repeats}")
    if keys is not None:
        parts.append(f"keys: {keys:,}")
    return "[" + "  |  ".join(parts) + "]"


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:,.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(rows: List[Dict[str, object]], title: str = "") -> str:
    """Render rows (dicts sharing keys) as an aligned text table."""
    if not rows:
        return f"{title}\n(no data)\n" if title else "(no data)\n"
    columns = list(rows[0].keys())
    cells = [[_format_value(row[column]) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(row[index]) for row in cells))
        for index, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(
        column.ljust(width) for column, width in zip(columns, widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append(
            "  ".join(value.rjust(width) for value, width in zip(row, widths))
        )
    return "\n".join(lines) + "\n"


def render_boxplot(
    series: Dict[str, Sequence[Number]],
    title: str = "",
    unit: str = "s",
    scale: float = 1.0,
) -> str:
    """Render box-plot series as min/median/mean/max summary rows.

    The paper's box plots reduce to these summary statistics for a text
    rendering; relative ordering of medians/means is the reproducible
    "shape".
    """
    rows: List[Dict[str, object]] = []
    for name in sorted(series):
        samples = [value * scale for value in series[name]]
        stats = summarize(samples)
        rows.append(
            {
                "Function": name,
                f"min ({unit})": stats["min"],
                f"median ({unit})": stats["median"],
                f"mean ({unit})": stats["mean"],
                f"max ({unit})": stats["max"],
                "n": len(samples),
            }
        )
    return render_table(rows, title=title)


def render_series(
    series: Dict[str, List[Tuple[int, float]]],
    title: str = "",
    x_label: str = "size",
    y_label: str = "seconds",
) -> str:
    """Render line series (name → [(x, y), ...]) as a wide table."""
    if not series:
        return f"{title}\n(no data)\n" if title else "(no data)\n"
    xs = sorted({x for points in series.values() for x, _ in points})
    rows: List[Dict[str, object]] = []
    for name in sorted(series):
        points = dict(series[name])
        row: Dict[str, object] = {f"{y_label} \\ {x_label}": name}
        for x in xs:
            row[str(x)] = points.get(x, float("nan"))
        rows.append(row)
    return render_table(rows, title=title)


def render_speedups(
    series: Dict[str, Sequence[float]], reference: str = "STL", title: str = ""
) -> str:
    """Render mean speedups of every function relative to a reference.

    Speedup > 1 means faster than the reference (lower time); this is how
    the paper states "5.01% over STL" and "almost 50x" claims.
    """
    if reference not in series:
        raise KeyError(f"reference {reference!r} missing from series")
    reference_mean = sum(series[reference]) / len(series[reference])
    rows: List[Dict[str, object]] = []
    for name in sorted(series):
        mean = sum(series[name]) / len(series[name])
        rows.append(
            {
                "Function": name,
                "mean (s)": mean,
                f"speedup vs {reference}": reference_mean / mean,
            }
        )
    rows.sort(key=lambda row: -float(row[f"speedup vs {reference}"]))
    return render_table(rows, title=title)

"""Reproduction of the paper's Tables 1, 2 and 3.

Each ``table*`` function returns structured rows (list of dicts keyed by
column name) which :mod:`repro.bench.report` renders as text.  Defaults
are reduced from paper scale (ten samples, 10,000 affectations, 100,000
uniformity keys) so the benchmark suite terminates quickly; every knob
is a parameter and EXPERIMENTS.md records which scale produced the
recorded numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.experiment import ExperimentSpec
from repro.bench.metrics import (
    geometric_mean,
    normalized_chi_square,
    total_collisions,
)
from repro.bench.runner import measure_b_time, measure_h_time
from repro.bench.suite import TABLE1_ORDER, make_hash_suite
from repro.keygen.distributions import Distribution
from repro.keygen.driver import ALLOWED_MIXES, ExecutionMode
from repro.keygen.generator import generate_keys
from repro.keygen.keyspec import KEY_TYPES, key_spec

DEFAULT_KEY_TYPES = tuple(KEY_TYPES)


def _cell(
    key_type: str, distribution: Distribution, spread: int
) -> ExperimentSpec:
    return ExperimentSpec(
        key_spec=key_spec(key_type),
        container_name="unordered_map",
        distribution=distribution,
        spread=spread,
        mode=ExecutionMode.BATCHED,
        mix=ALLOWED_MIXES[0],
    )


def table1(
    key_types: Sequence[str] = DEFAULT_KEY_TYPES,
    samples: int = 3,
    affectations: int = 10_000,
    collision_keys: int = 10_000,
    h_time_keys: int = 10_000,
    arch: str = "x86",
) -> List[Dict[str, object]]:
    """Table 1: B-Time, H-Time, B-Coll, T-Coll under a normal distribution.

    Per the paper: B-Time and B-Coll are geometric means across
    experiments (here: across key types, unordered_map, batched, spread =
    ``collision_keys``); H-Time is the time of hashing ``h_time_keys``
    activations; T-Coll sums the 64-bit collisions over all key types at
    ``collision_keys`` keys each.
    """
    per_function: Dict[str, Dict[str, List[float]]] = {}
    t_coll_total: Dict[str, int] = {}
    for key_type in key_types:
        suite = make_hash_suite(key_type, arch=arch)
        keys = generate_keys(
            key_type,
            collision_keys,
            Distribution.NORMAL,
            seed=1,
        )
        cell = _cell(key_type, Distribution.NORMAL, min(collision_keys, 10_000))
        for name, function in suite.items():
            slot = per_function.setdefault(
                name, {"b": [], "h": [], "bc": []}
            )
            runs = measure_b_time(
                function, cell, samples=samples, affectations=affectations
            )
            slot["b"].extend(run.elapsed_seconds for run in runs)
            slot["bc"].extend(
                max(run.bucket_collisions, 1) for run in runs
            )
            slot["h"].append(
                measure_h_time(function, keys[:h_time_keys], repeats=1)
            )
            t_coll_total[name] = t_coll_total.get(name, 0) + total_collisions(
                function, keys
            )
    rows: List[Dict[str, object]] = []
    for name in TABLE1_ORDER:
        if name not in per_function:
            continue
        slot = per_function[name]
        rows.append(
            {
                "Function": name,
                "B-Time (ms)": geometric_mean(slot["b"]) * 1000,
                "H-Time (ms)": geometric_mean(slot["h"]) * 1000,
                "B-Coll": geometric_mean(slot["bc"]),
                "T-Coll": t_coll_total[name],
            }
        )
    return rows


def table2(
    key_types: Sequence[str] = DEFAULT_KEY_TYPES,
    keys_per_type: int = 100_000,
    bins: int = 1024,
    arch: str = "x86",
) -> List[Dict[str, object]]:
    """Table 2: chi-square uniformity normalized to STL, per distribution.

    RQ3's methodology: hash ``keys_per_type`` keys per format and
    distribution, histogram, chi-square against uniform, normalize by the
    STL result, then aggregate across formats with a geometric mean.
    """
    column_by_distribution = {
        Distribution.INCREMENTAL: "Inc",
        Distribution.NORMAL: "Normal",
        Distribution.UNIFORM: "Uniform",
    }
    accumulator: Dict[str, Dict[str, List[float]]] = {}
    for key_type in key_types:
        suite = make_hash_suite(key_type, arch=arch)
        for distribution, column in column_by_distribution.items():
            keys = generate_keys(key_type, keys_per_type, distribution, seed=2)
            normalized = normalized_chi_square(suite, keys, bins=bins)
            for name, value in normalized.items():
                accumulator.setdefault(name, {}).setdefault(
                    column, []
                ).append(value)
    rows: List[Dict[str, object]] = []
    for name in TABLE1_ORDER:
        if name not in accumulator:
            continue
        columns = accumulator[name]
        rows.append(
            {
                "Function": name,
                "Inc": geometric_mean(columns["Inc"]),
                "Normal": geometric_mean(columns["Normal"]),
                "Uniform": geometric_mean(columns["Uniform"]),
            }
        )
    return rows


def table3(
    key_types: Sequence[str] = DEFAULT_KEY_TYPES,
    samples: int = 3,
    affectations: int = 10_000,
    collision_keys: int = 10_000,
    arch: str = "x86",
) -> List[Dict[str, object]]:
    """Table 3: B-Time (BT) and T-Coll (TC) per key distribution."""
    distributions = (
        (Distribution.INCREMENTAL, "Inc"),
        (Distribution.NORMAL, "Normal"),
        (Distribution.UNIFORM, "Uniform"),
    )
    b_times: Dict[str, Dict[str, List[float]]] = {}
    t_colls: Dict[str, Dict[str, int]] = {}
    for key_type in key_types:
        suite = make_hash_suite(key_type, arch=arch)
        for distribution, column in distributions:
            keys = generate_keys(key_type, collision_keys, distribution, seed=3)
            cell = _cell(key_type, distribution, min(collision_keys, 10_000))
            for name, function in suite.items():
                runs = measure_b_time(
                    function, cell, samples=samples, affectations=affectations
                )
                b_times.setdefault(name, {}).setdefault(column, []).extend(
                    run.elapsed_seconds for run in runs
                )
                bucket = t_colls.setdefault(name, {})
                bucket[column] = bucket.get(column, 0) + total_collisions(
                    function, keys
                )
    rows: List[Dict[str, object]] = []
    for name in TABLE1_ORDER:
        if name not in b_times:
            continue
        row: Dict[str, object] = {"Function": name}
        for _distribution, column in distributions:
            row[f"BT {column} (ms)"] = (
                geometric_mean(b_times[name][column]) * 1000
            )
            row[f"TC {column}"] = t_colls[name][column]
        rows.append(row)
    return rows

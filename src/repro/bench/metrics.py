"""Statistics used throughout the evaluation.

The paper reports geometric means over experiment groups, Mann-Whitney U
tests for pairwise significance, chi-square goodness-of-fit against a
uniform histogram for RQ3, and two collision counts (bucket collisions
from the container, "true" 64-bit hash collisions from the function).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Sequence

from scipy import stats

HashCallable = Callable[[bytes], int]

HASH_SPACE = 1 << 64


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; zero values are floored at a tiny epsilon.

    Timing values are strictly positive in practice; the floor guards
    collision counts of zero when a geomean over counts is requested.
    """
    floored = [max(value, 1e-12) for value in values]
    if not floored:
        raise ValueError("geometric mean of an empty sequence")
    return math.exp(sum(math.log(value) for value in floored) / len(floored))


def total_collisions(hash_function: HashCallable, keys: Sequence[bytes]) -> int:
    """The paper's T-Coll: distinct keys mapping to the same 64-bit value.

    Computed as (number of distinct keys) - (number of distinct hashes);
    Table 1 sums this over the eight key types.
    """
    distinct_keys = set(keys)
    hashes = {hash_function(key) for key in distinct_keys}
    return len(distinct_keys) - len(hashes)


def collisions_by_key_type(
    hash_functions: Dict[str, HashCallable], keys: Sequence[bytes]
) -> Dict[str, int]:
    """T-Coll of several functions over one key sample."""
    return {
        name: total_collisions(function, keys)
        for name, function in hash_functions.items()
    }


def chi_square_uniformity(
    hash_function: HashCallable,
    keys: Sequence[bytes],
    bins: int = 1024,
) -> float:
    """Chi-square statistic of the hash distribution against uniform.

    Follows RQ3's methodology: hash every key, histogram the 64-bit
    values into equal-width bins, and compute the chi-square
    goodness-of-fit statistic against the flat expectation.  The paper
    reports these normalized by the STL result; see
    :func:`normalized_chi_square`.
    """
    if not keys:
        raise ValueError("uniformity test requires keys")
    counts = [0] * bins
    width = HASH_SPACE // bins
    for key in keys:
        counts[hash_function(key) // width] += 1
    expected = len(keys) / bins
    return sum((count - expected) ** 2 / expected for count in counts)


def normalized_chi_square(
    hash_functions: Dict[str, HashCallable],
    keys: Sequence[bytes],
    bins: int = 1024,
    reference: str = "STL",
) -> Dict[str, float]:
    """Chi-square statistics normalized by the reference function's.

    This is exactly the presentation of Table 2: values near 1.0 mean
    "as uniform as STL"; large values mean skewed.
    """
    raw = {
        name: chi_square_uniformity(function, keys, bins)
        for name, function in hash_functions.items()
    }
    baseline = raw.get(reference)
    if baseline is None:
        raise KeyError(f"reference function {reference!r} not in suite")
    baseline = max(baseline, 1e-12)
    return {name: value / baseline for name, value in raw.items()}


def chi_square_p_value(
    hash_function: HashCallable, keys: Sequence[bytes], bins: int = 256
) -> float:
    """The chi-square goodness-of-fit p-value (scipy), for significance
    statements like the paper's "statistically uniform (p > 0.05)"."""
    counts = [0] * bins
    width = HASH_SPACE // bins
    for key in keys:
        counts[hash_function(key) // width] += 1
    return float(stats.chisquare(counts).pvalue)


def mann_whitney_u(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Two-sided Mann-Whitney U p-value between two timing samples.

    The paper uses this test for every "significantly different /
    statistically equivalent" claim (e.g. OffXor vs Naive p = 0.51).
    """
    if len(sample_a) < 2 or len(sample_b) < 2:
        raise ValueError("Mann-Whitney needs at least two samples per side")
    return float(
        stats.mannwhitneyu(sample_a, sample_b, alternative="two-sided").pvalue
    )


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson r, used by RQ6/RQ8 to assert linear asymptotic behaviour."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("Pearson needs two equal-length samples")
    return float(stats.pearsonr(xs, ys).statistic)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Min / max / mean / median / geomean summary used by reports."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("cannot summarize an empty sequence")
    median = (
        ordered[n // 2]
        if n % 2
        else (ordered[n // 2 - 1] + ordered[n // 2]) / 2
    )
    return {
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / n,
        "median": median,
        "geomean": geometric_mean(ordered),
    }

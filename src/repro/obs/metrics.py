"""A minimal metrics registry: counters, gauges, fixed-bucket histograms.

Instruments are plain-attribute objects designed to sit on hot paths:
``Counter.inc`` is one integer add, ``Histogram.observe`` is a short
loop over a fixed bucket tuple.  There is no sampling, no labels, no
background thread — a deliberate floor so the cost of *measuring* never
distorts what the paper measures (H-Time/B-Time).

Instruments are created through a :class:`MetricsRegistry`, which
get-or-creates by name and snapshots everything into plain dicts (the
export format of ``sepe obs --metrics`` and
``FormatDispatcher.stats()``).  A process-wide default registry backs
the dispatcher and container telemetry; tests may build private ones.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "exponential_buckets",
    "DEFAULT_BUCKETS",
    "NS_LATENCY_BUCKETS",
]

DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)
"""Default histogram upper bounds; an implicit +inf bucket follows."""


def exponential_buckets(
    start: float, factor: float, count: int
) -> Tuple[float, ...]:
    """Geometric bucket edges: ``start, start*factor, ...`` (``count``).

    The natural shape for latency instruments, whose observations span
    orders of magnitude: linear edges like :data:`DEFAULT_BUCKETS`
    saturate in the overflow bucket on nanosecond-scale hash timings.
    """
    if count < 1:
        raise ValueError("need at least one bucket")
    if start <= 0 or factor <= 1:
        raise ValueError("start must be > 0 and factor > 1")
    return tuple(start * factor**index for index in range(count))


NS_LATENCY_BUCKETS: Tuple[float, ...] = exponential_buckets(64, 4, 12)
"""Nanosecond-latency edges, 64 ns to ~268 ms in powers of four — wide
enough that a specialized hash (~50 ns) and a slow fallback path land in
*named* buckets instead of the overflow bucket."""


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A value that goes up and down (e.g. current bucket count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> float:
        return self.value

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``buckets`` are inclusive upper bounds in increasing order; one
    overflow bucket (+inf) is always appended.  Alongside the bucket
    counts it tracks count/sum/min/max, enough for mean and tail
    summaries without storing observations.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        ordered = tuple(sorted(buckets))
        if not ordered:
            raise ValueError("a histogram needs at least one bucket bound")
        self.name = name
        self.buckets = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None


class MetricsRegistry:
    """Named instruments, get-or-created on first use.

    Creation takes a lock; increments on the returned instruments are
    lock-free (instrument handles are meant to be cached by callers
    sitting on hot paths, e.g. the dispatcher caches its counters at
    registration time).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get or create a histogram, with configurable bucket edges.

        ``buckets`` applies on first creation (``None`` means
        :data:`DEFAULT_BUCKETS`, the backward-compatible behaviour).
        Asking for an existing histogram with *different* explicit
        edges raises — silently handing back an instrument with other
        buckets would misattribute every subsequent observation.
        """
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, DEFAULT_BUCKETS if buckets is None else buckets
                )
            elif (
                buckets is not None
                and tuple(sorted(buckets)) != instrument.buckets
            ):
                raise ValueError(
                    f"histogram {name!r} already exists with buckets "
                    f"{instrument.buckets}, requested {tuple(buckets)}"
                )
            return instrument

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Everything, as plain dicts: counters, gauges, histograms."""
        with self._lock:
            return {
                "counters": {
                    name: c.snapshot() for name, c in self._counters.items()
                },
                "gauges": {
                    name: g.snapshot() for name, g in self._gauges.items()
                },
                "histograms": {
                    name: h.snapshot()
                    for name, h in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Zero every instrument (handles held by callers stay valid)."""
        with self._lock:
            for group in (self._counters, self._gauges, self._histograms):
                for instrument in group.values():
                    instrument.reset()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY

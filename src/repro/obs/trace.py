"""Zero-dependency tracing: context-manager spans over pluggable sinks.

The synthesis pipeline (inference → analysis → plan → codegen →
compile) and the benchmark harness wrap their stages in :func:`span`.
When tracing is disabled — the default — ``span()`` returns a shared
no-op singleton, so instrumented code pays one attribute check and no
allocations; hot loops (compiled hash functions, container probes) are
never instrumented per call in the first place.

When tracing is enabled, each span records wall time
(``time.perf_counter``), per-thread CPU time (``time.thread_time``),
its depth, and its parent, and emits a :class:`SpanRecord` to every
registered sink on exit (children therefore emit before their parents).
Span stacks are thread-local: concurrent threads produce independent,
correctly-nested trees that share one sink stream.

Typical usage::

    from repro.obs import capture_spans
    with capture_spans() as sink:
        synthesize(r"\\d{3}-\\d{2}-\\d{4}")
    print(render_span_tree(sink.records()))
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "span",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
]


@dataclass
class SpanRecord:
    """One finished span, as delivered to sinks.

    Attributes:
        span_id: unique (per-tracer) id of this span.
        parent_id: id of the enclosing span, or None for a root.
        name: span name, dotted by convention (``"synthesis.plan"``).
        depth: nesting depth at entry (0 for a root span).
        started: ``time.perf_counter()`` at entry, for ordering.
        wall_seconds: wall-clock duration.
        cpu_seconds: per-thread CPU time consumed inside the span.
        thread: name of the thread that ran the span.
        attributes: free-form key/value annotations.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    depth: int
    started: float
    wall_seconds: float
    cpu_seconds: float
    thread: str
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable view (the JSON-lines wire format)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "started": self.started,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "thread": self.thread,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            name=data["name"],
            depth=data["depth"],
            started=data["started"],
            wall_seconds=data["wall_seconds"],
            cpu_seconds=data["cpu_seconds"],
            thread=data["thread"],
            attributes=dict(data.get("attributes", {})),
        )


class _NoopSpan:
    """The span handed out while tracing is disabled: does nothing.

    A single module-level instance is shared by every call, so the
    disabled path allocates nothing per span.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def annotate(self, key: str, value: Any) -> None:
        """Ignored; annotations only exist on live spans."""


NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """An active span; created only when the owning tracer is enabled."""

    __slots__ = (
        "_tracer",
        "name",
        "attributes",
        "span_id",
        "parent_id",
        "depth",
        "_start_wall",
        "_start_cpu",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attributes = attributes

    def annotate(self, key: str, value: Any) -> None:
        """Attach a key/value to the span while it is open."""
        self.attributes[key] = value

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack()
        parent = stack[-1] if stack else None
        self.span_id = self._tracer._next_id()
        self.parent_id = parent.span_id if parent is not None else None
        self.depth = len(stack)
        stack.append(self)
        self._start_cpu = time.thread_time()
        self._start_wall = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        wall = time.perf_counter() - self._start_wall
        cpu = time.thread_time() - self._start_cpu
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._emit(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                depth=self.depth,
                started=self._start_wall,
                wall_seconds=wall,
                cpu_seconds=cpu,
                thread=threading.current_thread().name,
                attributes=self.attributes,
            )
        )


class Tracer:
    """Owns the enabled flag, the sink list, and the thread-local stack.

    Most code uses the module-level default tracer through :func:`span`;
    tests may build private tracers to avoid global state.
    """

    def __init__(self, sinks: Optional[List[Any]] = None, enabled: bool = False):
        self._sinks: List[Any] = list(sinks or [])
        self._enabled = enabled
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- configuration -------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def add_sink(self, sink: Any) -> None:
        """Register a sink (any object with ``emit(SpanRecord)``)."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Any) -> None:
        """Unregister a sink; missing sinks are ignored."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    @property
    def sinks(self) -> List[Any]:
        return list(self._sinks)

    # -- span creation -------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """A context-manager span, or the no-op singleton when disabled."""
        if not self._enabled:
            return NOOP_SPAN
        return _LiveSpan(self, name, attributes)

    # -- internals -----------------------------------------------------

    def _stack(self) -> List[_LiveSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> int:
        return next(self._ids)

    def _emit(self, record: SpanRecord) -> None:
        for sink in self._sinks:
            sink.emit(record)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _TRACER


def span(name: str, **attributes: Any):
    """Open a span on the default tracer (no-op singleton when disabled)."""
    tracer = _TRACER
    if not tracer._enabled:
        return NOOP_SPAN
    return _LiveSpan(tracer, name, attributes)


def tracing_enabled() -> bool:
    """Whether the default tracer currently records spans."""
    return _TRACER.enabled


def enable_tracing(*sinks: Any) -> Tracer:
    """Enable the default tracer, optionally registering sinks first."""
    for sink in sinks:
        _TRACER.add_sink(sink)
    _TRACER.enable()
    return _TRACER


def disable_tracing() -> None:
    """Disable the default tracer (sinks stay registered)."""
    _TRACER.disable()

"""Per-opcode and per-stage profiling: the observatory's diagnostic eye.

The spans of :mod:`repro.obs.trace` say how long a pipeline *stage*
took; this module answers the next question — *where inside the hash
itself* the time goes — by attributing wall/CPU time and execution
counts to individual IR opcodes:

- **Interpreter profiling** (:func:`profile_interp`) drives
  :func:`repro.codegen.interp.interpret_profiled_many`, whose chained
  timestamps attribute every instruction's cost to its opcode.  The
  attribution is exhaustive by construction: self-times sum to the
  evaluation's elapsed time, and only corpus-level entry/exit
  bookkeeping escapes, so coverage against an externally measured wall
  clock sits above 99%.
- **Batch-kernel profiling** (:func:`profile_batch`) re-executes the IR
  over NumPy ``uint64`` lane arrays one opcode at a time — the same
  lowering rules as :mod:`repro.codegen.batch`'s vector tier, with a
  timestamp per array op — and falls back to interpreter attribution
  when the plan does not vectorize.  Results are parity-checked against
  the interpreter, so a profile is also a correctness witness.
- **Stage self-times** (:func:`self_time_tree`) turn captured span
  records into a tree where each node carries *self* wall/CPU time
  (total minus children), the shape ``sepe profile`` prints for the
  synthesis pipeline.

``sepe profile <regex>`` wires all three together into the per-plan
"hot opcode" report the native-tier roadmap item will lean on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.trace import SpanRecord

__all__ = [
    "OpcodeStat",
    "ProfileReport",
    "profile_interp",
    "profile_batch",
    "profile_format",
    "self_time_tree",
    "stage_self_times",
    "render_profile",
    "render_self_time_tree",
]


@dataclass
class OpcodeStat:
    """Aggregated cost of one IR opcode across a profiled corpus."""

    opcode: str
    count: int
    wall_seconds: float
    cpu_seconds: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "opcode": self.opcode,
            "count": self.count,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
        }


@dataclass
class ProfileReport:
    """Per-opcode attribution for one plan over one key corpus.

    Attributes:
        label: plan identification (regex + family).
        family: hash family profiled.
        mode: ``"interp"`` (scalar interpreter) or ``"vector"`` (NumPy
            lane-array re-execution of the batch kernel's lowering).
        keys: number of keys evaluated.
        total_wall: the evaluator's own elapsed seconds (entry→exit).
        total_cpu: the evaluator's elapsed thread-CPU seconds.
        harness_wall: externally measured wall seconds around the whole
            profiled run — the denominator of :attr:`coverage`.
        opcodes: per-opcode stats, keyed by opcode name.
    """

    label: str
    family: str
    mode: str
    keys: int
    total_wall: float
    total_cpu: float
    harness_wall: float
    opcodes: Dict[str, OpcodeStat] = field(default_factory=dict)

    @property
    def attributed_wall(self) -> float:
        """Wall seconds attributed to named opcodes (sums self-times)."""
        return sum(stat.wall_seconds for stat in self.opcodes.values())

    @property
    def attributed_cpu(self) -> float:
        return sum(stat.cpu_seconds for stat in self.opcodes.values())

    @property
    def coverage(self) -> float:
        """Attributed share of the externally measured wall time.

        Chained timestamps make this ≥ 0.95 in practice (typically
        > 0.99); it can never meaningfully exceed 1.0 — only timer
        granularity noise sits between the two measurements.
        """
        if self.harness_wall <= 0:
            return 0.0
        return self.attributed_wall / self.harness_wall

    def hot(self) -> List[OpcodeStat]:
        """Opcodes by descending wall time — the "hot opcode" ranking."""
        return sorted(
            self.opcodes.values(),
            key=lambda stat: stat.wall_seconds,
            reverse=True,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "family": self.family,
            "mode": self.mode,
            "keys": self.keys,
            "total_wall_seconds": self.total_wall,
            "total_cpu_seconds": self.total_cpu,
            "harness_wall_seconds": self.harness_wall,
            "attributed_wall_seconds": self.attributed_wall,
            "coverage": self.coverage,
            "opcodes": [stat.to_dict() for stat in self.hot()],
        }


def _stats_to_report(
    label: str,
    family: str,
    mode: str,
    keys: int,
    stats: Dict[str, list],
    total_wall: float,
    total_cpu: float,
    harness_wall: float,
) -> ProfileReport:
    return ProfileReport(
        label=label,
        family=family,
        mode=mode,
        keys=keys,
        total_wall=total_wall,
        total_cpu=total_cpu,
        harness_wall=harness_wall,
        opcodes={
            opcode: OpcodeStat(opcode, entry[0], entry[1], entry[2])
            for opcode, entry in stats.items()
        },
    )


def _ir_function(synthesized):
    from repro.codegen.ir import build_ir, optimize

    return optimize(build_ir(synthesized.plan))


def profile_interp(synthesized, keys: Sequence[bytes]) -> ProfileReport:
    """Profile the IR interpreter over ``keys``, opcode by opcode.

    ``synthesized`` is a :class:`repro.core.synthesis.SynthesizedHash`.
    The profiled values are checked against the compiled scalar function
    on a sample, so the attribution demonstrably measures the same
    program it claims to.
    """
    func = _ir_function(synthesized)
    from repro.codegen.interp import interpret_profiled_many

    stats: Dict[str, list] = {}
    started = time.perf_counter()
    values, total_wall, total_cpu = interpret_profiled_many(
        func, keys, stats
    )
    harness_wall = time.perf_counter() - started
    compiled = synthesized.function
    for index in range(0, len(keys), max(1, len(keys) // 16)):
        if values[index] != compiled(keys[index]):  # pragma: no cover
            raise AssertionError(
                "profiled interpreter diverged from compiled function "
                f"on key {keys[index]!r}"
            )
    return _stats_to_report(
        label=synthesized.plan.pattern_regex or synthesized.name,
        family=synthesized.family.value,
        mode="interp",
        keys=len(keys),
        stats=stats,
        total_wall=total_wall,
        total_cpu=total_cpu,
        harness_wall=harness_wall,
    )


class _NotVectorizable(Exception):
    """Raised when a plan would not take the batch backend's vector tier."""


def _profile_vector(func, keys: Sequence[bytes], stats: Dict[str, list]):
    """Re-execute the IR over uint64 lane arrays, timing each opcode.

    Mirrors the lowering rules of
    :func:`repro.codegen.batch._emit_vector_lines` — the same bail-out
    conditions (variable length, per-plan scalar operands, 128-bit lane
    pairs in plain arithmetic) raise :class:`_NotVectorizable`, so this
    profiler only reports vector timings for plans whose real batch
    kernel runs the vector tier.
    """
    import numpy as np

    from repro.codegen.ir import AES_ROUND_KEY
    from repro.codegen.python_backend import _TTABLES
    from repro.isa.bits import MASK64, mask_to_runs

    plan = func.plan
    if not plan.is_fixed_length:
        raise _NotVectorizable("variable-length plan")
    length = plan.key_length
    n = len(keys)

    cpu_prev = time.thread_time()
    wall_prev = time.perf_counter()
    wall_entry, cpu_entry = wall_prev, cpu_prev

    # The prologue the real vector kernel also pays — joining the batch
    # into one buffer and viewing it as a byte matrix — is attributed to
    # an explicit pseudo-stage so the vector profile stays exhaustive.
    buf = b"".join(keys)
    if len(buf) != n * length:
        raise _NotVectorizable("non-conforming key lengths in batch")
    arr = np.frombuffer(buf, dtype=np.uint8).reshape(n, length)
    tables = [np.asarray(table, dtype=np.uint64) for table in _TTABLES]

    cpu_now = time.thread_time()
    wall_now = time.perf_counter()
    stats["(batch setup)"] = [
        1,
        wall_now - wall_prev,
        cpu_now - cpu_prev,
    ]
    wall_prev, cpu_prev = wall_now, cpu_now

    registers: Dict[str, Any] = {}
    wide: set = set()
    scalars: set = set()
    values: Optional[list] = None
    for instr in func.instrs:
        op, dest, args = instr.opcode, instr.dest, instr.args
        if op == "const":
            value = args[0]
            if value >= 1 << 64:
                wide.add(dest)
                registers[dest] = (
                    np.full(n, value & MASK64, dtype=np.uint64),
                    np.full(n, value >> 64, dtype=np.uint64),
                )
            else:
                scalars.add(dest)
                registers[dest] = value
        elif op == "load64":
            offset, width = args
            if width == 8:
                registers[dest] = (
                    np.ascontiguousarray(arr[:, offset : offset + 8])
                    .view("<u8")
                    .ravel()
                )
            else:
                widened = np.zeros((n, 8), dtype=np.uint8)
                widened[:, :width] = arr[:, offset : offset + width]
                registers[dest] = widened.view("<u8").ravel()
        elif op in ("pext", "shl", "shr", "mul64", "rotl", "xor", "or", "add"):
            register_args = [arg for arg in args if isinstance(arg, str)]
            if any(arg in scalars or arg in wide for arg in register_args):
                raise _NotVectorizable(f"scalar/wide operand in {op}")
            if op == "pext":
                source = registers[args[0]]
                out = np.zeros(n, dtype=np.uint64)
                for shift, run_mask, out_pos in mask_to_runs(args[1]):
                    term = (source >> np.uint64(shift)) & np.uint64(run_mask)
                    out |= term << np.uint64(out_pos)
                registers[dest] = out
            elif op == "shl":
                registers[dest] = registers[args[0]] << np.uint64(args[1])
            elif op == "shr":
                registers[dest] = registers[args[0]] >> np.uint64(args[1])
            elif op == "mul64":
                registers[dest] = registers[args[0]] * np.uint64(args[1])
            elif op == "rotl":
                source = registers[args[0]]
                amount = args[1]
                registers[dest] = (source << np.uint64(amount)) | (
                    source >> np.uint64(64 - amount)
                )
            elif op == "xor":
                registers[dest] = registers[args[0]] ^ registers[args[1]]
            elif op == "or":
                registers[dest] = registers[args[0]] | registers[args[1]]
            else:  # add
                registers[dest] = registers[args[0]] + registers[args[1]]
        elif op == "aes_absorb":
            state, lo, hi = args
            if lo in scalars or hi in scalars:
                raise _NotVectorizable("scalar lane in aes_absorb")
            if state in wide:
                state_lo, state_hi = registers[state]
            else:
                state_value = registers[state]
                if isinstance(state_value, int):
                    state_lo = np.full(
                        n, state_value & MASK64, dtype=np.uint64
                    )
                    state_hi = np.full(n, state_value >> 64, dtype=np.uint64)
                else:
                    state_lo, state_hi = state_value, np.zeros(
                        n, dtype=np.uint64
                    )
            xl = state_lo ^ registers[lo]
            xh = state_hi ^ registers[hi]
            from repro.codegen.python_backend import _AES_GATHER

            columns = []
            for col in range(4):
                acc = None
                for row in range(4):
                    shift = 8 * _AES_GATHER[col][row]
                    lane, local = (xl, shift) if shift < 64 else (
                        xh,
                        shift - 64,
                    )
                    index = (lane >> np.uint64(local)) & np.uint64(0xFF)
                    term = tables[row][index.astype(np.intp)]
                    acc = term if acc is None else acc ^ term
                columns.append(acc)
            round_lo = np.uint64(AES_ROUND_KEY & MASK64)
            round_hi = np.uint64(AES_ROUND_KEY >> 64)
            registers[dest] = (
                (columns[0] | (columns[1] << np.uint64(32))) ^ round_lo,
                (columns[2] | (columns[3] << np.uint64(32))) ^ round_hi,
            )
            wide.add(dest)
        elif op == "aes_fold":
            source = args[0]
            if source not in wide:
                raise _NotVectorizable("aes_fold of a narrow register")
            lane_lo, lane_hi = registers[source]
            registers[dest] = lane_lo ^ lane_hi
        elif op == "ret":
            returned = args[0]
            if returned in scalars or returned in wide:
                raise _NotVectorizable("ret of a non-lane register")
            values = registers[returned].tolist()
        else:
            raise _NotVectorizable(f"opcode {op} has no vector lowering")
        cpu_now = time.thread_time()
        wall_now = time.perf_counter()
        entry = stats.get(op)
        if entry is None:
            entry = stats[op] = [0, 0.0, 0.0]
        entry[0] += 1
        entry[1] += wall_now - wall_prev
        entry[2] += cpu_now - cpu_prev
        wall_prev = wall_now
        cpu_prev = cpu_now
        if values is not None:
            break
    if values is None:
        raise _NotVectorizable("IR function fell off the end without ret")
    return values, wall_prev - wall_entry, cpu_prev - cpu_entry


def profile_batch(synthesized, keys: Sequence[bytes]) -> ProfileReport:
    """Profile the batch kernel's work, opcode by opcode.

    Vectorizable plans are re-executed over NumPy lane arrays with one
    timestamp per array op (mode ``"vector"``), and the profiled values
    are parity-checked against the real ``hash_many`` kernel.  Plans the
    batch backend would lower to its loop form — and environments
    without NumPy — fall back to interpreter attribution (mode
    ``"interp"``), which is what the generated loop executes per key
    anyway.
    """
    func = _ir_function(synthesized)
    from repro.codegen.batch import HAVE_NUMPY

    if HAVE_NUMPY:
        stats: Dict[str, list] = {}
        started = time.perf_counter()
        try:
            values, total_wall, total_cpu = _profile_vector(
                func, keys, stats
            )
        except _NotVectorizable:
            values = None
        if values is not None:
            harness_wall = time.perf_counter() - started
            expected = synthesized.batch_function(list(keys))
            if values != expected:  # pragma: no cover - parity guard
                raise AssertionError(
                    "vector profiler diverged from the batch kernel"
                )
            return _stats_to_report(
                label=synthesized.plan.pattern_regex or synthesized.name,
                family=synthesized.family.value,
                mode="vector",
                keys=len(keys),
                stats=stats,
                total_wall=total_wall,
                total_cpu=total_cpu,
                harness_wall=harness_wall,
            )
    report = profile_interp(synthesized, keys)
    return report


def profile_format(
    regex: str,
    family=None,
    count: int = 2000,
    seed: int = 0,
    batch: bool = False,
) -> ProfileReport:
    """Synthesize ``regex`` and profile it on conforming keys.

    The convenience form behind ``sepe profile``: draws ``count``
    conforming keys (seeded, so profiles are comparable run to run) and
    attributes interpreter — or, with ``batch``, vector-kernel — time to
    opcodes.
    """
    from repro.core.plan import HashFamily
    from repro.core.synthesis import synthesize
    from repro.core.validate import sample_conforming_keys

    if family is None:
        family = HashFamily.PEXT
    synthesized = synthesize(regex, family)
    keys = sample_conforming_keys(synthesized.pattern, count, seed=seed)
    if batch:
        return profile_batch(synthesized, keys)
    return profile_interp(synthesized, keys)


# -- stage self-times over span records ---------------------------------


def self_time_tree(records: Sequence[SpanRecord]) -> List[Dict[str, Any]]:
    """Build a self-time tree from captured span records.

    Each node is a dict with ``name``, ``wall``/``cpu`` (inclusive),
    ``self_wall``/``self_cpu`` (inclusive minus direct children), and
    ``children``.  Spans whose parent is missing from ``records`` are
    treated as roots, matching ``render_span_tree``.
    """
    known = {record.span_id for record in records}
    children: Dict[Any, List[SpanRecord]] = {}
    roots: List[SpanRecord] = []
    for record in records:
        if record.parent_id is None or record.parent_id not in known:
            roots.append(record)
        else:
            children.setdefault(record.parent_id, []).append(record)
    roots.sort(key=lambda r: r.started)

    def build(record: SpanRecord) -> Dict[str, Any]:
        kids = sorted(
            children.get(record.span_id, ()), key=lambda r: r.started
        )
        child_nodes = [build(child) for child in kids]
        child_wall = sum(child["wall"] for child in child_nodes)
        child_cpu = sum(child["cpu"] for child in child_nodes)
        return {
            "name": record.name,
            "wall": record.wall_seconds,
            "cpu": record.cpu_seconds,
            "self_wall": max(record.wall_seconds - child_wall, 0.0),
            "self_cpu": max(record.cpu_seconds - child_cpu, 0.0),
            "children": child_nodes,
        }

    return [build(root) for root in roots]


def stage_self_times(
    records: Sequence[SpanRecord],
) -> Dict[str, Dict[str, float]]:
    """Aggregate the self-time tree by span name.

    The flat counterpart of :func:`self_time_tree` — per stage name,
    call count plus inclusive and self wall/CPU totals.  This is the
    JSON shape ``sepe profile --json`` exports for pipeline stages.
    """
    totals: Dict[str, Dict[str, float]] = {}

    def visit(node: Dict[str, Any]) -> None:
        entry = totals.setdefault(
            node["name"],
            {
                "calls": 0,
                "wall_seconds": 0.0,
                "self_wall_seconds": 0.0,
                "cpu_seconds": 0.0,
                "self_cpu_seconds": 0.0,
            },
        )
        entry["calls"] += 1
        entry["wall_seconds"] += node["wall"]
        entry["self_wall_seconds"] += node["self_wall"]
        entry["cpu_seconds"] += node["cpu"]
        entry["self_cpu_seconds"] += node["self_cpu"]
        for child in node["children"]:
            visit(child)

    for root in self_time_tree(records):
        visit(root)
    return totals


# -- rendering -----------------------------------------------------------


def render_profile(report: ProfileReport) -> str:
    """The per-opcode table ``sepe profile`` prints."""
    lines = [
        f"opcode profile: {report.label} [{report.family}] "
        f"mode={report.mode} keys={report.keys}",
        f"{'opcode':<12s} {'count':>10s} {'wall ms':>10s} {'%':>7s} "
        f"{'cpu ms':>10s} {'ns/key':>9s}",
    ]
    total = report.attributed_wall or 1.0
    for stat in report.hot():
        lines.append(
            f"{stat.opcode:<12s} {stat.count:>10,d} "
            f"{stat.wall_seconds * 1e3:>10.3f} "
            f"{100 * stat.wall_seconds / total:>6.1f}% "
            f"{stat.cpu_seconds * 1e3:>10.3f} "
            f"{stat.wall_seconds * 1e9 / max(report.keys, 1):>9.1f}"
        )
    hot = report.hot()
    hottest = hot[0].opcode if hot else "(none)"
    lines.append(
        f"attributed {report.attributed_wall * 1e3:.3f} ms of "
        f"{report.harness_wall * 1e3:.3f} ms wall "
        f"(coverage {100 * report.coverage:.2f}%), hot opcode: {hottest}"
    )
    return "\n".join(lines)


def render_self_time_tree(records: Sequence[SpanRecord]) -> str:
    """Indented stage tree with inclusive and self wall/CPU columns."""
    if not records:
        return "(no spans recorded)"
    lines: List[str] = []

    def walk(node: Dict[str, Any], depth: int) -> None:
        lines.append(
            f"{'  ' * depth}{node['name']:<{max(1, 40 - 2 * depth)}s} "
            f"wall {node['wall'] * 1e3:9.3f} ms   "
            f"self {node['self_wall'] * 1e3:9.3f} ms   "
            f"cpu {node['cpu'] * 1e3:9.3f} ms"
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for root in self_time_tree(records):
        walk(root, 0)
    return "\n".join(lines)

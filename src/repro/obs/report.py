"""Rendering and aggregation over captured spans and metric snapshots.

These helpers turn raw :class:`~repro.obs.trace.SpanRecord` streams into
the two consumable shapes:

- :func:`render_span_tree` — the indented tree ``sepe obs`` prints;
- :func:`span_breakdown` — per-stage totals attached to bench results.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from repro.obs.trace import SpanRecord

__all__ = ["render_span_tree", "span_breakdown", "render_metrics"]


def _children_by_parent(
    records: Sequence[SpanRecord],
) -> Dict[Any, List[SpanRecord]]:
    children: Dict[Any, List[SpanRecord]] = {}
    for record in records:
        children.setdefault(record.parent_id, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.started)
    return children


def render_span_tree(records: Sequence[SpanRecord]) -> str:
    """Render spans as an indented tree with wall/CPU timings.

    Spans whose parent is absent from ``records`` (e.g. a ring buffer
    that dropped old events) are treated as roots rather than lost.
    """
    if not records:
        return "(no spans recorded)"
    known_ids = {record.span_id for record in records}
    roots = [
        record
        for record in records
        if record.parent_id is None or record.parent_id not in known_ids
    ]
    roots.sort(key=lambda r: r.started)
    children = _children_by_parent(records)
    lines: List[str] = []

    def walk(record: SpanRecord, depth: int) -> None:
        attrs = ""
        if record.attributes:
            rendered = ", ".join(
                f"{key}={value}"
                for key, value in sorted(record.attributes.items())
            )
            attrs = f"  [{rendered}]"
        lines.append(
            f"{'  ' * depth}{record.name:<{max(1, 40 - 2 * depth)}s} "
            f"wall {record.wall_seconds * 1000:9.3f} ms   "
            f"cpu {record.cpu_seconds * 1000:9.3f} ms{attrs}"
        )
        for child in children.get(record.span_id, ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def span_breakdown(records: Iterable[SpanRecord]) -> Dict[str, Dict[str, float]]:
    """Aggregate spans by name: call count and total wall/CPU seconds."""
    breakdown: Dict[str, Dict[str, float]] = {}
    for record in records:
        entry = breakdown.setdefault(
            record.name, {"calls": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0}
        )
        entry["calls"] += 1
        entry["wall_seconds"] += record.wall_seconds
        entry["cpu_seconds"] += record.cpu_seconds
    return breakdown


def render_metrics(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Render a ``MetricsRegistry.snapshot()`` as readable lines."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<44s} {counters[name]}")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<44s} {gauges[name]}")
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            data = histograms[name]
            lines.append(
                f"  {name:<44s} count={data['count']} "
                f"mean={data['mean']:.3f} min={data['min']} "
                f"max={data['max']}"
            )
            bounds = [str(bound) for bound in data["buckets"]] + ["+inf"]
            pairs = ", ".join(
                f"<={bound}: {count}"
                for bound, count in zip(bounds, data["counts"])
            )
            lines.append(f"    {pairs}")
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)

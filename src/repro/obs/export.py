"""Metric exporters: Prometheus text exposition, JSON lines, HTTP.

The metrics registry (:mod:`repro.obs.metrics`) snapshots to plain
dicts; this module turns those snapshots into the two interchange
shapes production tooling scrapes, plus the transport:

- :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4): counters as ``_total``, gauges verbatim, histograms
  as cumulative ``_bucket{le=...}`` series with ``_sum``/``_count``.
  Metric names are derived from instrument names by replacing the
  separator dots (``dispatch.route.x`` → ``sepe_dispatch_route_x``).
- :func:`parse_prometheus` — a deliberately strict checker for that
  format (name/label grammar, TYPE-before-samples, cumulative
  monotonic buckets, ``+Inf`` agreement with ``_count``).  The test
  suite round-trips every rendered snapshot through it, so the
  exporter cannot drift from what a real scraper accepts.
- :func:`snapshot_jsonl` / :func:`write_snapshot_jsonl` — one JSON
  object per metric per line, self-describing and append-friendly: the
  shape the regression ledger and offline analysis consume.
- :class:`MetricsServer` — an opt-in, zero-dependency
  ``ThreadingHTTPServer`` exposing ``/metrics`` (Prometheus),
  ``/metrics.json`` (snapshot document), and ``/healthz``; the scrape
  surface behind ``sepe obs --serve``.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "PrometheusFormatError",
    "render_prometheus",
    "parse_prometheus",
    "snapshot_jsonl",
    "write_snapshot_jsonl",
    "MetricsServer",
    "CONTENT_TYPE_PROMETHEUS",
]

CONTENT_TYPE_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_CHARS_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(raw: str, prefix: str) -> str:
    """Instrument name → Prometheus metric name (prefixed, sanitized)."""
    sanitized = _INVALID_CHARS_RE.sub("_", raw)
    if sanitized and sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    snapshot: Dict[str, Dict[str, Any]], prefix: str = "sepe"
) -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    Every family gets ``# HELP`` and ``# TYPE`` lines; counter names
    gain the conventional ``_total`` suffix; histogram buckets are
    emitted cumulatively with an explicit ``+Inf`` bucket equal to
    ``_count``.  The output round-trips through
    :func:`parse_prometheus`.
    """
    lines: List[str] = []
    for raw_name in sorted(snapshot.get("counters", {})):
        name = _metric_name(raw_name, prefix)
        lines.append(f"# HELP {name}_total Counter {raw_name!r}.")
        lines.append(f"# TYPE {name}_total counter")
        value = snapshot["counters"][raw_name]
        lines.append(f"{name}_total {_format_value(value)}")
    for raw_name in sorted(snapshot.get("gauges", {})):
        name = _metric_name(raw_name, prefix)
        lines.append(f"# HELP {name} Gauge {raw_name!r}.")
        lines.append(f"# TYPE {name} gauge")
        value = snapshot["gauges"][raw_name]
        lines.append(f"{name} {_format_value(value)}")
    for raw_name in sorted(snapshot.get("histograms", {})):
        name = _metric_name(raw_name, prefix)
        data = snapshot["histograms"][raw_name]
        lines.append(f"# HELP {name} Histogram {raw_name!r}.")
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            lines.append(
                f'{name}_bucket{{le="{_format_value(float(bound))}"}} '
                f"{cumulative}"
            )
        total = data["count"]
        lines.append(f'{name}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{name}_sum {_format_value(float(data['sum']))}")
        lines.append(f"{name}_count {total}")
    return "\n".join(lines) + "\n" if lines else ""


class PrometheusFormatError(ValueError):
    """A violation of the Prometheus text exposition format."""


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)


def _parse_labels(raw: Optional[str], line_no: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    if not raw:
        return labels
    # Label bodies are comma-separated name="value" pairs; values may
    # contain escaped quotes/backslashes/newlines.
    pair_re = re.compile(
        r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*'
    )
    position = 0
    while position < len(raw):
        match = pair_re.match(raw, position)
        if not match:
            raise PrometheusFormatError(
                f"line {line_no}: malformed label at {raw[position:]!r}"
            )
        labels[match.group("name")] = match.group("value")
        position = match.end()
        if position < len(raw):
            if raw[position] != ",":
                raise PrometheusFormatError(
                    f"line {line_no}: expected ',' between labels"
                )
            position += 1
    return labels


def _parse_float(raw: str, line_no: int) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise PrometheusFormatError(
            f"line {line_no}: invalid sample value {raw!r}"
        ) from None


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Strictly parse Prometheus text exposition output.

    Checks, beyond line syntax:

    - metric and label names match the exposition grammar;
    - every sample belongs to a family announced by a ``# TYPE`` line
      *before* it, and no family is typed twice;
    - counter families use the ``_total`` suffix and are non-negative;
    - histogram ``_bucket`` series carry an ``le`` label, are ordered
      and cumulative (monotonically non-decreasing counts), include a
      ``+Inf`` bucket, and agree with ``_count``.

    Returns:
        Mapping family name → ``{"type": ..., "samples": [(name,
        labels, value), ...]}``.

    Raises:
        PrometheusFormatError: on any violation.
    """
    families: Dict[str, Dict[str, Any]] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise PrometheusFormatError(
                    f"line {line_no}: malformed TYPE line"
                )
            _, _, family, kind = parts
            if not _NAME_RE.match(family):
                raise PrometheusFormatError(
                    f"line {line_no}: invalid family name {family!r}"
                )
            if kind not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                raise PrometheusFormatError(
                    f"line {line_no}: unknown metric type {kind!r}"
                )
            if family in families:
                raise PrometheusFormatError(
                    f"line {line_no}: duplicate TYPE for {family!r}"
                )
            families[family] = {"type": kind, "samples": []}
            continue
        if line.startswith("#"):
            if not line.startswith("# HELP "):
                raise PrometheusFormatError(
                    f"line {line_no}: unknown comment {line!r}"
                )
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise PrometheusFormatError(
                f"line {line_no}: malformed sample {line!r}"
            )
        name = match.group("name")
        labels = _parse_labels(match.group("labels"), line_no)
        for label_name in labels:
            if not _LABEL_NAME_RE.match(label_name):
                raise PrometheusFormatError(
                    f"line {line_no}: invalid label name {label_name!r}"
                )
        value = _parse_float(match.group("value"), line_no)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and base in families:
                if families[base]["type"] in ("histogram", "summary"):
                    family = base
                break
        if family not in families:
            raise PrometheusFormatError(
                f"line {line_no}: sample {name!r} precedes its TYPE line"
            )
        info = families[family]
        if info["type"] == "counter":
            if not name.endswith("_total"):
                raise PrometheusFormatError(
                    f"line {line_no}: counter sample {name!r} "
                    "missing _total suffix"
                )
            if value < 0:
                raise PrometheusFormatError(
                    f"line {line_no}: negative counter value"
                )
        if info["type"] == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                raise PrometheusFormatError(
                    f"line {line_no}: histogram bucket missing le label"
                )
        info["samples"].append((name, labels, value))
    for family, info in families.items():
        if not info["samples"]:
            raise PrometheusFormatError(
                f"family {family!r} declared but has no samples"
            )
        if info["type"] != "histogram":
            continue
        buckets: List[Tuple[float, float]] = []
        count_value: Optional[float] = None
        for name, labels, value in info["samples"]:
            if name.endswith("_bucket"):
                buckets.append((_parse_float(labels["le"], 0), value))
            elif name.endswith("_count"):
                count_value = value
        if not buckets:
            raise PrometheusFormatError(
                f"histogram {family!r} has no buckets"
            )
        bounds = [bound for bound, _ in buckets]
        if bounds != sorted(bounds):
            raise PrometheusFormatError(
                f"histogram {family!r} buckets out of order"
            )
        counts = [count for _, count in buckets]
        if any(b > a for a, b in zip(counts[1:], counts)):
            raise PrometheusFormatError(
                f"histogram {family!r} bucket counts not cumulative"
            )
        if bounds[-1] != math.inf:
            raise PrometheusFormatError(
                f"histogram {family!r} missing +Inf bucket"
            )
        if count_value is None:
            raise PrometheusFormatError(
                f"histogram {family!r} missing _count"
            )
        if counts[-1] != count_value:
            raise PrometheusFormatError(
                f"histogram {family!r}: +Inf bucket {counts[-1]} != "
                f"_count {count_value}"
            )
    return families


# -- JSON lines ----------------------------------------------------------


def snapshot_jsonl(
    snapshot: Dict[str, Dict[str, Any]],
    meta: Optional[Dict[str, Any]] = None,
) -> Iterator[str]:
    """Yield one JSON line per metric in a registry snapshot.

    The first line is a ``{"kind": "meta", ...}`` header carrying the
    capture timestamp plus any caller-supplied ``meta`` fields, so an
    appended stream of snapshots stays self-describing.
    """
    header = {"kind": "meta", "captured_at": time.time()}
    if meta:
        header.update(meta)
    yield json.dumps(header, sort_keys=True)
    for name in sorted(snapshot.get("counters", {})):
        yield json.dumps(
            {
                "kind": "counter",
                "name": name,
                "value": snapshot["counters"][name],
            },
            sort_keys=True,
        )
    for name in sorted(snapshot.get("gauges", {})):
        yield json.dumps(
            {
                "kind": "gauge",
                "name": name,
                "value": snapshot["gauges"][name],
            },
            sort_keys=True,
        )
    for name in sorted(snapshot.get("histograms", {})):
        yield json.dumps(
            {
                "kind": "histogram",
                "name": name,
                **snapshot["histograms"][name],
            },
            sort_keys=True,
        )


def write_snapshot_jsonl(
    path: str,
    registry: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
    append: bool = False,
) -> int:
    """Write the registry snapshot to ``path`` as JSON lines.

    Returns the number of lines written (metrics + the meta header).
    """
    if registry is None:
        registry = get_registry()
    lines = list(snapshot_jsonl(registry.snapshot(), meta=meta))
    mode = "a" if append else "w"
    with open(path, mode, encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


# -- HTTP ----------------------------------------------------------------


class MetricsServer:
    """A zero-dependency HTTP scrape endpoint over a metrics registry.

    Serves three routes:

    - ``/metrics`` — Prometheus text exposition of the live registry;
    - ``/metrics.json`` — the raw snapshot document;
    - ``/healthz`` — liveness (always ``ok``).

    The server runs on a daemon thread (``ThreadingHTTPServer``, so a
    slow scraper never blocks another) and binds lazily in
    :meth:`start`; pass ``port=0`` to let the OS choose — the bound
    port is available as :attr:`port` afterwards.  Usable as a context
    manager.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 9464,
        prefix: str = "sepe",
    ):
        self._registry = registry if registry is not None else get_registry()
        self._host = host
        self._requested_port = port
        self._prefix = prefix
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self.scrapes = self._registry.counter("obs.export.scrapes")

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        registry = self._registry
        prefix = self._prefix
        scrapes = self.scrapes

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    scrapes.inc()
                    body = render_prometheus(
                        registry.snapshot(), prefix=prefix
                    ).encode("utf-8")
                    self._reply(200, CONTENT_TYPE_PROMETHEUS, body)
                elif path == "/metrics.json":
                    scrapes.inc()
                    body = json.dumps(
                        registry.snapshot(), sort_keys=True
                    ).encode("utf-8")
                    self._reply(200, "application/json", body)
                elif path == "/healthz":
                    self._reply(200, "text/plain", b"ok\n")
                else:
                    self._reply(404, "text/plain", b"not found\n")

            def _reply(
                self, status: int, content_type: str, body: bytes
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                """Silence per-request stderr logging."""

        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="sepe-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

"""Span sinks: where trace events go.

Three built-ins cover the intended uses:

- :class:`RingBufferSink` — bounded in-memory buffer, the default for
  programmatic capture (CLI report, bench span breakdowns, tests).
- :class:`JsonLinesSink` — one JSON object per line, the stable export
  format (each line round-trips through ``SpanRecord.from_dict``).
- :class:`LogSink` — human-readable lines on a text stream, for
  watching a run live.

A sink is anything with ``emit(record: SpanRecord) -> None``; custom
sinks plug into ``Tracer.add_sink`` unchanged.
"""

from __future__ import annotations

import json
import sys
from collections import deque
from typing import IO, Iterator, List, Optional, Union

from repro.obs.trace import SpanRecord

__all__ = ["RingBufferSink", "JsonLinesSink", "LogSink", "read_jsonl"]


class RingBufferSink:
    """Keep the most recent ``capacity`` spans in memory."""

    def __init__(self, capacity: int = 4096):
        self._buffer: deque = deque(maxlen=capacity)

    def emit(self, record: SpanRecord) -> None:
        self._buffer.append(record)

    def records(self) -> List[SpanRecord]:
        """A snapshot of the buffered spans, oldest first."""
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self.records())


class JsonLinesSink:
    """Append spans to a file (or stream) as JSON lines.

    Args:
        target: a path to open for writing, or an already-open text
            stream (which the caller then owns — ``close`` leaves it).
    """

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False

    def emit(self, record: SpanRecord) -> None:
        self._stream.write(json.dumps(record.to_dict(), sort_keys=True))
        self._stream.write("\n")

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl(path: str) -> List[SpanRecord]:
    """Load spans back from a :class:`JsonLinesSink` file."""
    records: List[SpanRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(SpanRecord.from_dict(json.loads(line)))
    return records


class LogSink:
    """Write one indented human-readable line per span."""

    def __init__(self, stream: Optional[IO[str]] = None):
        self._stream = stream if stream is not None else sys.stderr

    def emit(self, record: SpanRecord) -> None:
        indent = "  " * record.depth
        attrs = ""
        if record.attributes:
            rendered = ", ".join(
                f"{key}={value}" for key, value in record.attributes.items()
            )
            attrs = f"  [{rendered}]"
        self._stream.write(
            f"[trace] {indent}{record.name}  "
            f"wall={record.wall_seconds * 1000:.3f}ms  "
            f"cpu={record.cpu_seconds * 1000:.3f}ms{attrs}\n"
        )

"""``repro.obs``: tracing, metrics, and profiling hooks.

The measurement substrate for the reproduction: the paper's claims are
performance claims, so every future perf PR benchmarks against what
this package observes.

Five layers, all zero-dependency:

- **Tracing** (:mod:`repro.obs.trace`, :mod:`repro.obs.sinks`) —
  context-manager spans with wall/CPU timing and a thread-local span
  stack, emitted to pluggable sinks (ring buffer, JSON lines, log).
  Disabled by default; the disabled path is a shared no-op singleton.
- **Metrics** (:mod:`repro.obs.metrics`) — counters, gauges, and
  fixed-bucket histograms cheap enough for hot paths, behind a
  get-or-create registry with a snapshot/export API.
- **Profiling** (:mod:`repro.obs.profile`) — per-opcode wall/CPU
  attribution for the IR interpreter and batch kernels, plus span
  self-time trees; ``sepe profile`` prints the hot-opcode report.
- **Exporters** (:mod:`repro.obs.export`) — Prometheus text exposition
  (with a strict format checker), JSON-lines snapshots, and a
  stdlib-only ``/metrics`` HTTP endpoint (``sepe obs --serve``).
- **Instrumentation** — spans around every synthesis pipeline stage
  (inference, analysis, planning, both codegen backends, the IR
  interpreter), route/fallback counters in
  :class:`repro.core.dispatch.FormatDispatcher`, and opt-in container
  telemetry (chain lengths on insert, resize events) gated by
  :func:`enable_container_telemetry` so tier-1 performance is
  unaffected when off.

Quick capture::

    from repro import synthesize
    from repro.obs import capture_spans
    from repro.obs.report import render_span_tree

    with capture_spans() as sink:
        synthesize(r"\\d{3}-\\d{2}-\\d{4}")
    print(render_span_tree(sink.records()))

Or from the command line: ``sepe obs '\\d{3}-\\d{2}-\\d{4}'``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.export import (
    CONTENT_TYPE_PROMETHEUS,
    MetricsServer,
    PrometheusFormatError,
    parse_prometheus,
    render_prometheus,
    snapshot_jsonl,
    write_snapshot_jsonl,
)
from repro.obs.metrics import (
    NS_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    get_registry,
)
from repro.obs.profile import (
    OpcodeStat,
    ProfileReport,
    profile_batch,
    profile_format,
    profile_interp,
    render_profile,
    render_self_time_tree,
    self_time_tree,
    stage_self_times,
)
from repro.obs.report import render_metrics, render_span_tree, span_breakdown
from repro.obs.sinks import JsonLinesSink, LogSink, RingBufferSink, read_jsonl
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "CONTENT_TYPE_PROMETHEUS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "LogSink",
    "MetricsRegistry",
    "MetricsServer",
    "NS_LATENCY_BUCKETS",
    "OpcodeStat",
    "ProfileReport",
    "PrometheusFormatError",
    "RingBufferSink",
    "SpanRecord",
    "Tracer",
    "capture_spans",
    "container_telemetry_enabled",
    "disable_container_telemetry",
    "disable_tracing",
    "enable_container_telemetry",
    "enable_tracing",
    "exponential_buckets",
    "get_registry",
    "get_tracer",
    "parse_prometheus",
    "profile_batch",
    "profile_format",
    "profile_interp",
    "read_jsonl",
    "render_metrics",
    "render_profile",
    "render_prometheus",
    "render_self_time_tree",
    "render_span_tree",
    "self_time_tree",
    "snapshot_jsonl",
    "span",
    "span_breakdown",
    "stage_self_times",
    "tracing_enabled",
    "write_snapshot_jsonl",
]


@contextmanager
def capture_spans(
    sink: Optional[RingBufferSink] = None,
) -> Iterator[RingBufferSink]:
    """Temporarily enable tracing into a ring buffer.

    Restores the tracer's previous enabled state and removes the sink
    on exit, so captures nest and leave no global residue::

        with capture_spans() as sink:
            synthesize(...)
        stages = {record.name for record in sink.records()}
    """
    buffer = sink if sink is not None else RingBufferSink()
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.add_sink(buffer)
    tracer.enable()
    try:
        yield buffer
    finally:
        tracer.remove_sink(buffer)
        if not was_enabled:
            tracer.disable()


_CONTAINER_TELEMETRY = False


def enable_container_telemetry() -> None:
    """Make newly-built containers record chain/resize telemetry.

    Only affects tables constructed *after* the call; existing tables
    keep whatever telemetry state they were built with.
    """
    global _CONTAINER_TELEMETRY
    _CONTAINER_TELEMETRY = True


def disable_container_telemetry() -> None:
    """Newly-built containers go back to the zero-overhead no-op path."""
    global _CONTAINER_TELEMETRY
    _CONTAINER_TELEMETRY = False


def container_telemetry_enabled() -> bool:
    """Whether new containers will be built with telemetry attached."""
    return _CONTAINER_TELEMETRY

"""``sepe-keybuilder``: infer a format regex from example keys.

Mirrors the paper's ``./bin/keybuilder < file_with_keys.txt`` (Figure
5a): reads one key per line and prints the regular expression recognizing
the inferred format, suitable for piping into ``sepe-keysynth``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.fast_infer import ENGINES, infer_pattern_parallel
from repro.core.inference import infer_pattern, infer_pattern_from_file
from repro.core.regex_render import render_regex
from repro.errors import SepeError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sepe-keybuilder",
        description="Infer a key-format regex from example keys.",
    )
    parser.add_argument(
        "file",
        nargs="?",
        help="file with one key per line (default: stdin)",
    )
    parser.add_argument(
        "--show-pattern",
        action="store_true",
        help="also print the quad pattern (constant-bit template per byte)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard the join over N worker processes (0 = all cores)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="auto",
        help="inference engine (default: auto; 'reference' is the "
        "per-quad parity oracle)",
    )
    return parser


def run(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    jobs = args.jobs if args.jobs > 0 else None  # None = all cores
    parallel = jobs is None or jobs > 1
    try:
        if args.file and not parallel and args.engine == "auto":
            # Stream the file through the accumulator: bounded memory.
            pattern = infer_pattern_from_file(args.file)
        else:
            if args.file:
                with open(args.file, "r", encoding="utf-8") as handle:
                    lines = handle.read().splitlines()
            else:
                lines = sys.stdin.read().splitlines()
            keys = [line for line in lines if line]
            if parallel:
                pattern = infer_pattern_parallel(keys, jobs=jobs)
            else:
                pattern = infer_pattern(keys, engine=args.engine)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except SepeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(render_regex(pattern))
    if args.show_pattern:
        for index in range(pattern.body_length):
            byte = pattern.byte_pattern(index)
            print(
                f"byte {index:3d}: const_mask={byte.const_mask:08b} "
                f"const_value=0x{byte.const_value:02x}",
                file=sys.stderr,
            )
    return 0


def main() -> None:  # pragma: no cover - console-script shim
    raise SystemExit(run())


if __name__ == "__main__":  # pragma: no cover
    main()

"""``sepe-keysynth``: synthesize hash functions from a format regex.

Mirrors the paper's ``keysynth "$(...)"`` one-liner (Figure 5): given a
regex, prints the synthesized functions.  By default it emits the two
functions of Figure 5c — the Pext hash and the simpler OffXor baseline —
as C++; ``--emit python`` prints the executable Python this reproduction
actually benchmarks.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.plan import HashFamily
from repro.core.synthesis import synthesize
from repro.errors import SepeError

_FAMILIES = {family.value: family for family in HashFamily}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sepe-keysynth",
        description="Synthesize specialized hash functions from a regex.",
    )
    parser.add_argument("regex", help="key format regular expression")
    parser.add_argument(
        "--family",
        choices=sorted(_FAMILIES) + ["all"],
        default="all",
        help="which synthetic family to emit (default: pext + offxor)",
    )
    parser.add_argument(
        "--emit",
        choices=["cpp", "python"],
        default="cpp",
        help="output language (default: C++, like the paper's tool)",
    )
    parser.add_argument(
        "--target",
        choices=["x86", "aarch64"],
        default="x86",
        help="C++ target architecture",
    )
    parser.add_argument(
        "--final-mix",
        action="store_true",
        help="append the murmur finalizer (uniformity extension)",
    )
    return parser


def run(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.family == "all":
        families = [HashFamily.PEXT, HashFamily.OFFXOR]
    else:
        families = [_FAMILIES[args.family]]
    for family in families:
        try:
            synthesized = synthesize(
                args.regex, family, final_mix=args.final_mix
            )
        except SepeError as error:
            print(f"error ({family.value}): {error}", file=sys.stderr)
            return 1
        if args.emit == "python":
            print(synthesized.python_source)
        else:
            try:
                print(synthesized.cpp_source(args.target))
            except SepeError as error:
                print(f"error ({family.value}): {error}", file=sys.stderr)
                return 1
    return 0


def main() -> None:  # pragma: no cover - console-script shim
    raise SystemExit(run())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Command-line tools mirroring the paper's Figure 5.

- ``sepe-keybuilder`` — read example keys from stdin or a file, print the
  inferred format regex (Figure 5a's ``keybuilder``).
- ``sepe-keysynth`` — take a format regex, print the synthesized hash
  functions as C++ (Figure 5b/5c's ``keysynth``) or as the executable
  Python this reproduction runs.
- ``sepe`` — umbrella command with ``infer``, ``synth`` and ``demo``
  subcommands.
"""

"""``sepe``: umbrella command line for the reproduction.

Subcommands:

- ``sepe infer`` — keybuilder (examples → regex).
- ``sepe synth`` — keysynth (regex → code).
- ``sepe demo`` — synthesize for a paper key format and race the result
  against the STL baseline on a small workload.
- ``sepe bench`` — run one of the paper's tables at reduced scale.
- ``sepe obs`` — trace a synthesis run; print the span tree, dispatcher
  routing stats, and (optionally) a metrics snapshot / JSON-lines export.
- ``sepe fuzz`` — run a seeded differential/metamorphic fuzz campaign
  over the whole pipeline; minimized reproducers land in the corpus.
- ``sepe verify`` — statically verify one format's plans: lints plus
  the bijectivity prover's certificate or refutation.
- ``sepe lint`` — the CI gate: lint many formats (built-ins, explicit
  regexes, corpus reproducers) and fail on error findings.
- ``sepe analyze`` — multi-domain static analysis report per format:
  derived value ranges, entropy funnels, and the predicted per-tier
  cost ladder.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.cli import keybuilder, keysynth


def _run_demo(args: argparse.Namespace) -> int:
    from repro.bench.metrics import total_collisions
    from repro.bench.runner import measure_h_time
    from repro.bench.suite import make_hash_suite
    from repro.keygen.distributions import Distribution
    from repro.keygen.generator import generate_keys
    from repro.keygen.keyspec import key_spec

    try:
        spec = key_spec(args.key_type)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    keys = generate_keys(spec.name, args.keys, Distribution.UNIFORM)
    suite = make_hash_suite(
        spec.name, include=["STL", "Naive", "OffXor", "Aes", "Pext"]
    )
    print(f"format {spec.name}: {spec.regex}")
    print(f"{args.keys} uniform keys, hashing time and 64-bit collisions:")
    stl_time = None
    for name in ("STL", "Naive", "OffXor", "Aes", "Pext"):
        seconds = measure_h_time(suite[name], keys, repeats=3)
        if name == "STL":
            stl_time = seconds
        collisions = total_collisions(suite[name], keys)
        speedup = stl_time / seconds if stl_time else float("nan")
        print(
            f"  {name:8s} {seconds * 1000:9.3f} ms   "
            f"{speedup:6.2f}x vs STL   {collisions} collisions"
        )
    return 0


def _run_list_formats() -> int:
    from repro.keygen.extended import EXTENDED_KEY_TYPES
    from repro.keygen.keyspec import KEY_TYPES

    print("paper formats (Section 4):")
    for name, spec in KEY_TYPES.items():
        print(f"  {name:8s} len {spec.length:3d}  {spec.regex}")
    print("extended formats:")
    for name, spec in EXTENDED_KEY_TYPES.items():
        print(f"  {name:8s} len {spec.length:3d}  {spec.regex}")
    return 0


def _run_explain(args: argparse.Namespace) -> int:
    from repro.core.explain import explain_format
    from repro.core.plan import HashFamily
    from repro.errors import SepeError

    try:
        family = HashFamily(args.family.lower())
        print(
            explain_format(
                args.regex, family, final_mix=args.final_mix
            )
        )
    except (SepeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def _run_validate(args: argparse.Namespace) -> int:
    from repro.core.plan import HashFamily
    from repro.core.synthesis import synthesize
    from repro.core.validate import validate
    from repro.errors import SepeError

    try:
        family = HashFamily(args.family.lower())
        synthesized = synthesize(
            args.regex, family, final_mix=args.final_mix
        )
    except (SepeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    report = validate(synthesized, sample_size=args.sample)
    print(f"family:            {family.value}"
          + (" + final mix" if args.final_mix else ""))
    print(f"sample size:       {report.sample_size}")
    print(f"deterministic:     {report.deterministic}")
    print(f"64-bit range:      {report.in_range}")
    print(f"bijection claimed: {report.bijection_claimed}")
    print(f"collision rate:    {report.collision_rate:.6f}")
    print(f"avalanche score:   {report.avalanche:.3f} (0.5 = ideal)")
    if report.bijection_witness:
        a, b = report.bijection_witness
        print(f"collision witness: {a!r} vs {b!r}")
    for problem in report.problems:
        print(f"PROBLEM: {problem}", file=sys.stderr)
    return 0 if report.ok else 1


def _run_obs(args: argparse.Namespace) -> int:
    """Trace one synthesis run; print the span tree and metrics."""
    from repro.core.dispatch import FormatDispatcher
    from repro.core.plan import HashFamily
    from repro.core.synthesis import synthesize
    from repro.errors import SepeError
    from repro.obs import (
        JsonLinesSink,
        RingBufferSink,
        get_registry,
        get_tracer,
        render_metrics,
        render_span_tree,
    )

    try:
        family = HashFamily(args.family.lower())
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    # Trace a *cold* synthesis: with a warm compile cache the IR and
    # compile stages would be elided from the span tree, which is the
    # very pipeline this command exists to show.  Counter totals survive.
    from repro.codegen.cache import get_compile_cache

    get_compile_cache().clear()
    exporter = None
    if args.export:
        try:
            exporter = JsonLinesSink(args.export)
        except OSError as error:
            print(f"error: cannot open {args.export}: {error}", file=sys.stderr)
            return 1
    tracer = get_tracer()
    ring = RingBufferSink()
    tracer.add_sink(ring)
    if exporter is not None:
        tracer.add_sink(exporter)
    was_enabled = tracer.enabled
    tracer.enable()
    try:
        dispatcher = FormatDispatcher()
        synthesized = dispatcher.register(args.regex, family=family)
        pattern = synthesized.pattern
        if pattern.is_fixed_length:
            choices = [
                bp.possible_bytes() for bp in pattern.byte_patterns()
            ]
            samples = [
                bytes(
                    possible[(i * (j + 1)) % len(possible)]
                    for j, possible in enumerate(choices)
                )
                for i in range(max(args.routes, 1))
            ]
            for sample in samples:
                dispatcher(sample)
            dispatcher(b"?" * (pattern.body_length + 1))  # fallback demo
            if args.metrics:
                from repro import obs
                from repro.containers.unordered_map import UnorderedMap

                obs.enable_container_telemetry()
                try:
                    table = UnorderedMap(synthesized.function)
                    for sample in samples:
                        table.insert(sample, None)
                finally:
                    obs.disable_container_telemetry()
    except SepeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        tracer.remove_sink(ring)
        if exporter is not None:
            tracer.remove_sink(exporter)
            exporter.close()
        if not was_enabled:
            tracer.disable()

    print(f"span tree for synthesize({args.regex!r}, {family.value}):")
    print(render_span_tree(ring.records()))
    print()
    print("dispatcher stats:")
    stats = dispatcher.stats()
    for entry in stats["formats"]:
        length = entry["length"] if entry["length"] is not None else "var"
        print(
            f"  {entry['regex']:<40s} len {length}  "
            f"routes {entry['routes']}"
        )
    print(
        f"  fallback routes: {stats['fallback_routes']}  "
        f"(total {stats['total_routes']})"
    )
    print()
    from repro.codegen.cache import get_compile_cache

    cache_stats = get_compile_cache().stats()
    exec_calls = get_registry().counter("codegen.python.exec_calls").value
    print(
        f"compile cache: {cache_stats['hits']} hits, "
        f"{cache_stats['misses']} misses, "
        f"{cache_stats['disk_hits']} disk hits, "
        f"{cache_stats['entries']} entries "
        f"({exec_calls} exec calls this process)"
    )
    for kind in sorted(cache_stats.get("kinds", {})):
        kind_stats = cache_stats["kinds"][kind]
        line = (
            f"  {kind:6s}: {kind_stats['hits']} hits, "
            f"{kind_stats['misses']} misses, "
            f"{kind_stats['disk_hits']} disk reuse"
        )
        if kind == "native":
            line += (
                f", {kind_stats['failures']} compile failures, "
                f"{kind_stats['negative_hits']} negative-cache hits"
            )
        print(line)
    native_fallbacks = get_registry().counter(
        "codegen.native.fallbacks"
    ).value
    if native_fallbacks:
        print(f"  native fallbacks this process: {native_fallbacks}")
    perfect_counters = {
        name: get_registry().counter(name).value
        for name in (
            "perfect.synthesized",
            "perfect.certified",
            "perfect.refused",
            "perfect.fallbacks",
            "containers.perfect_fast_path_hits",
        )
    }
    if any(perfect_counters.values()):
        print("perfect tier this process:")
        for name, value in perfect_counters.items():
            print(f"  {name}: {value}")
    if args.metrics:
        print()
        print("process metrics:")
        print(render_metrics(get_registry().snapshot()))
    if args.export:
        print()
        print(f"wrote {len(ring)} span events to {args.export}")
    if args.snapshot:
        from repro.obs import write_snapshot_jsonl

        try:
            lines = write_snapshot_jsonl(args.snapshot)
        except OSError as error:
            print(
                f"error: cannot write {args.snapshot}: {error}",
                file=sys.stderr,
            )
            return 1
        print(f"wrote metrics snapshot ({lines} lines) to {args.snapshot}")
    if args.serve:
        import time as _time

        from repro.obs import MetricsServer

        try:
            server = MetricsServer(port=args.port)
            server.start()
        except OSError as error:
            print(f"error: cannot bind port {args.port}: {error}",
                  file=sys.stderr)
            return 1
        print(
            f"serving http://127.0.0.1:{server.port}/metrics "
            "(Prometheus text) and /metrics.json"
            + (
                f" for {args.serve_for:g}s"
                if args.serve_for is not None
                else " until Ctrl-C"
            )
        )
        try:
            if args.serve_for is not None:
                _time.sleep(args.serve_for)
            else:  # pragma: no cover - interactive loop
                while True:
                    _time.sleep(3600)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            server.stop()
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    """Per-opcode hot-spot report for one format (``sepe profile``)."""
    import json

    from repro.core.plan import HashFamily
    from repro.errors import SepeError
    from repro.obs import (
        capture_spans,
        profile_format,
        render_profile,
        render_self_time_tree,
    )

    try:
        family = HashFamily(args.family.lower())
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    # Profile a *cold* synthesis so the captured span tree shows the
    # whole pipeline (same rationale as ``sepe obs``).
    from repro.codegen.cache import get_compile_cache

    get_compile_cache().clear()
    try:
        with capture_spans() as sink:
            report = profile_format(
                args.regex,
                family=family,
                count=args.keys,
                seed=args.seed,
                batch=args.batch,
            )
    except SepeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(render_profile(report))
    records = sink.records()
    if records:
        print()
        print("pipeline stage self-times:")
        print(render_self_time_tree(records))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote profile report to {args.json_out}")
    return 0


def _run_fuzz(args: argparse.Namespace) -> int:
    """Seeded fuzz campaign: JSON report to stdout, summary to stderr."""
    import json
    from pathlib import Path

    from repro.fuzz import FuzzConfig, run_fuzz
    from repro.fuzz.oracles import ORACLES

    if args.list_oracles:
        for oracle in ORACLES.values():
            print(f"{oracle.name:20s} [{oracle.group}] {oracle.description}")
        return 0
    try:
        config = FuzzConfig(
            seed=args.seed,
            budget_seconds=args.budget,
            max_cases=args.max_cases,
            oracles=args.oracles or None,
            keys_per_case=args.keys_per_case,
            shrink_seconds=args.shrink_budget,
            corpus_dir=Path(args.corpus) if args.corpus else None,
        )
        report = run_fuzz(config)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    document = report.to_dict()
    print(
        f"fuzz: seed {report.seed}, {report.cases} cases, "
        f"{report.total_executions} oracle executions in "
        f"{report.elapsed_seconds:.1f}s "
        f"({document['executions_per_second']}/s)",
        file=sys.stderr,
    )
    for failure in report.failures:
        where = (
            f" -> {failure.reproducer_path}"
            if failure.reproducer_path
            else ""
        )
        print(
            f"FAIL [{failure.oracle}] {failure.message} "
            f"(shrunk to {len(failure.shrunk.keys)} keys, "
            f"regex {failure.shrunk.spec.regex()!r}){where}",
            file=sys.stderr,
        )
    if report.ok:
        print("all oracles held", file=sys.stderr)
    output = json.dumps(document, indent=2, sort_keys=True)
    if args.report:
        Path(args.report).write_text(output + "\n")
        print(f"wrote report to {args.report}", file=sys.stderr)
    print(output)
    return 0 if report.ok else 1


def _verify_families(value: str) -> List["HashFamily"]:
    from repro.core.plan import HashFamily

    if value == "all":
        return list(HashFamily)
    return [HashFamily(value.lower())]


def _run_verify(args: argparse.Namespace) -> int:
    """Statically verify one format across families (``sepe verify``)."""
    import dataclasses
    import json

    from repro.core.regex_expand import pattern_from_regex
    from repro.core.synthesis import build_plan
    from repro.errors import SepeError
    from repro.verify import verify_plan

    try:
        families = _verify_families(args.family)
        pattern = pattern_from_regex(args.regex)
    except (SepeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    reports = []
    all_ok = True
    for family in families:
        try:
            plan = build_plan(pattern, family)
        except SepeError as error:
            print(f"error: {family.value}: {error}", file=sys.stderr)
            return 2
        if args.final_mix:
            plan = dataclasses.replace(plan, final_mix=True)
        report = verify_plan(plan, pattern)
        reports.append(report)
        all_ok = all_ok and report.ok
    if args.json:
        print(
            json.dumps(
                [report.to_dict() for report in reports],
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"format: {args.regex}")
        for report in reports:
            print(f"  {report.summary()}")
            bijectivity = report.bijectivity
            preconditions = list(bijectivity.failed_preconditions)
            for index, reason in enumerate(bijectivity.reasons):
                name = (
                    preconditions[index]["precondition"]
                    if index < len(preconditions)
                    else "?"
                )
                print(f"      refused [{name}]: {reason}")
            for finding in report.lints.findings:
                print(
                    f"      [{finding.severity.value}] "
                    f"{finding.rule}: {finding.message}"
                )
    return 0 if all_ok else 1


def _lint_targets(args: argparse.Namespace) -> List[Tuple[str, str]]:
    """Resolve ``sepe lint`` inputs to (label, regex) pairs."""
    from repro.fuzz.corpus import corpus_files, load_reproducer
    from repro.keygen.extended import EXTENDED_KEY_TYPES
    from repro.keygen.keyspec import KEY_TYPES

    targets: List[Tuple[str, str]] = []
    for regex in args.regexes:
        targets.append((regex, regex))
    if args.formats:
        for name, spec in {**KEY_TYPES, **EXTENDED_KEY_TYPES}.items():
            targets.append((name, spec.regex))
    if args.corpus:
        from pathlib import Path

        for path in corpus_files(Path(args.corpus)):
            case, _oracle, _message = load_reproducer(path)
            targets.append((path.name, case.spec.regex()))
    return targets


def _run_lint(args: argparse.Namespace) -> int:
    """Lint plans for many formats; the CI gate (``sepe lint``)."""
    import json

    from repro.core.plan import HashFamily
    from repro.core.regex_expand import pattern_from_regex
    from repro.core.synthesis import build_plan
    from repro.errors import SepeError
    from repro.verify import run_lints

    targets = _lint_targets(args)
    if not targets:
        print(
            "error: nothing to lint (pass regexes, --formats, or --corpus)",
            file=sys.stderr,
        )
        return 2
    documents = []
    errors = warnings_count = skipped = internal = 0
    for label, regex in targets:
        try:
            pattern = pattern_from_regex(regex)
        except SepeError as error:
            print(f"error: {label}: {error}", file=sys.stderr)
            return 2
        if pattern.body_length < 8:
            # SEPE never specializes sub-word bodies (paper footnote 5),
            # so there is no plan to lint; note it rather than failing.
            skipped += 1
            if not args.json:
                print(f"{label}: skipped (body below one machine word)")
            continue
        for family in HashFamily:
            try:
                plan = build_plan(pattern, family)
            except SepeError as error:
                print(f"error: {label}/{family.value}: {error}",
                      file=sys.stderr)
                return 2
            report = run_lints(plan, pattern)
            counts = report.counts()
            errors += counts["error"]
            warnings_count += counts["warning"]
            internal += len(report.internal_errors)
            documents.append({"target": label, **report.to_dict()})
            if not args.json and report.findings:
                for finding in report.findings:
                    print(
                        f"{label}/{family.value}: "
                        f"[{finding.severity.value}] {finding.rule}: "
                        f"{finding.message}"
                    )
    if args.json:
        print(json.dumps(documents, indent=2, sort_keys=True))
    summary = (
        f"linted {len(documents)} plan(s) across {len(targets)} target(s): "
        f"{errors} error(s), {warnings_count} warning(s), "
        f"{skipped} skipped"
    )
    print(summary, file=sys.stderr)
    if internal:
        # A crashed rule is a linter bug, not a plan defect; report it
        # on the input-error channel so CI distinguishes "the gate found
        # problems" (exit 1) from "the gate itself broke" (exit 2).
        print(
            f"internal error: {internal} lint rule crash(es); "
            "see lint-crash findings",
            file=sys.stderr,
        )
        return 2
    failed = errors > 0 or (args.fail_on == "warning" and warnings_count > 0)
    return 1 if failed else 0


def _run_analyze(args: argparse.Namespace) -> int:
    """Multi-domain static analysis report (``sepe analyze``).

    For each target format × family: the return value's derived range
    and known bits, the entropy-flow report (funnels), the predicted
    per-tier cost ladder, and which analysis-driven rewrites fired.
    Exit code 1 means at least one error-severity analysis finding
    (the CI ``analyze-gate`` signal); 2 is an input error.
    """
    import json

    from repro.codegen.ir import build_ir, optimize_with_stats
    from repro.core.plan import HashFamily
    from repro.core.regex_expand import pattern_from_regex
    from repro.core.synthesis import build_plan
    from repro.errors import SepeError
    from repro.verify.cost import predict_ir_costs
    from repro.verify.dataflow import analyze_dataflow, entropy_report
    from repro.verify.lints import LintContext, run_lints

    targets = _lint_targets(args)
    if not targets:
        print(
            "error: nothing to analyze (pass regexes, --formats, "
            "or --corpus)",
            file=sys.stderr,
        )
        return 2
    try:
        families = _verify_families(args.family)
    except (SepeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    documents = []
    errors = 0
    skipped = 0
    for label, regex in targets:
        try:
            pattern = pattern_from_regex(regex)
        except SepeError as error:
            print(f"error: {label}: {error}", file=sys.stderr)
            return 2
        if pattern.body_length < 8:
            skipped += 1
            if not args.json:
                print(f"{label}: skipped (body below one machine word)")
            continue
        for family in families:
            try:
                plan = build_plan(pattern, family)
            except SepeError as error:
                print(f"error: {label}/{family.value}: {error}",
                      file=sys.stderr)
                return 2
            func = build_ir(plan)
            optimized, rewrites = optimize_with_stats(func)
            analysis = analyze_dataflow(func, pattern)
            entropy = entropy_report(func, pattern, result=analysis)
            costs = predict_ir_costs(optimized)
            ctx = LintContext(plan, pattern)
            findings = run_lints(
                plan,
                pattern,
                rules=["entropy-funnel", "cost-anomaly"],
                ctx=ctx,
            ).findings
            errors += sum(
                1 for f in findings if f.severity.value == "error"
            )
            ret = analysis.ret
            document = {
                "target": label,
                "pattern": regex,
                "family": family.value,
                "ret": None,
                "entropy": entropy.to_dict(),
                "cost": costs.to_dict(),
                "rewrites": rewrites,
                "findings": [f.to_dict() for f in findings],
            }
            if ret is not None:
                document["ret"] = {
                    "range": [ret.range.lo, ret.range.hi],
                    "known_zeros": f"{ret.bits.zeros:#x}",
                    "known_ones": f"{ret.bits.ones:#x}",
                    "effective_width": ret.effective_width(),
                }
            documents.append(document)
            if args.json:
                continue
            print(f"{label}/{family.value}:")
            if ret is not None:
                print(
                    f"  ret range [{ret.range.lo:#x}, {ret.range.hi:#x}]"
                    f", effective width {ret.effective_width()} bit(s)"
                )
            print(
                f"  entropy: {entropy.live_input_bits:.1f} live bits -> "
                f"capacity {entropy.capacity:.1f}, "
                f"avoidable loss {entropy.avoidable_bits:.1f}, "
                f"{entropy.funneled_bits} funneled output bit(s)"
            )
            ladder = " > ".join(
                f"{tier} {costs.cost(tier):.0f}ns"
                for tier in reversed(costs.order())
            )
            print(f"  cost ladder (slow to fast): {ladder}")
            if costs.abstained():
                print(f"  cost abstained: {', '.join(costs.abstained())}")
            fired = {
                k: v
                for k, v in rewrites.items()
                if k != "tv_rejected" and v
            }
            if fired or rewrites.get("tv_rejected"):
                print(
                    "  rewrites: "
                    + (
                        "REJECTED by translation validation"
                        if rewrites.get("tv_rejected")
                        else ", ".join(
                            f"{name} x{count}"
                            for name, count in sorted(fired.items())
                        )
                    )
                )
            for finding in findings:
                print(
                    f"  [{finding.severity.value}] {finding.rule}: "
                    f"{finding.message}"
                )
    rendered = json.dumps(documents, indent=2, sort_keys=True)
    if args.json:
        print(rendered)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.json_out}", file=sys.stderr)
    print(
        f"analyzed {len(documents)} plan(s) across {len(targets)} "
        f"target(s): {errors} error finding(s), {skipped} skipped",
        file=sys.stderr,
    )
    return 1 if errors else 0


def _run_serve(args: argparse.Namespace) -> int:
    """Replay traffic through the sharded serve layer (``sepe serve``).

    Two modes: a single replay (optionally with mid-stream drift
    injection and the background reconciler) or ``--scaling``, which
    measures the same stream over several shard counts.  Exit code 1
    signals an assertion failure — hash errors, or a swap count that
    does not match ``--assert-swaps`` — which is what the CI
    ``serve-smoke`` job keys off.
    """
    import json as json_module

    from repro.serve.replay import (
        ReplayConfig,
        measure_scaling,
        run_replay,
        scaling_ratio,
    )

    config = ReplayConfig(
        shards=args.shards,
        threads=args.threads,
        keys_per_thread=args.keys,
        seconds=args.seconds,
        drift=args.drift,
        drift_kind=args.drift_kind,
        reconcile_interval=args.reconcile_interval,
        seed=args.seed,
    )
    failures = []
    if args.scaling:
        rows = measure_scaling(
            config,
            shard_counts=tuple(args.shard_counts),
            repeats=args.repeats,
        )
        for row in rows:
            print(
                f"shards={row['shards']}: "
                f"{row['keys_per_sec'] / 1e6:6.2f} Mkeys/s "
                f"({row['ns_per_key']:6.1f} ns/key)"
            )
        ratio = scaling_ratio(rows)
        if ratio is not None:
            print(f"ratio {max(args.shard_counts)}v1: {ratio:.2f}x")
        document = {"benchmark": "serve_replay", "scaling": {
            "config": config.describe(), "rows": rows,
            "ratio_widest_vs_one_shard": ratio,
        }}
    else:
        report = run_replay(config)
        print(
            f"{report['submitted']} keys in "
            f"{report['elapsed_seconds']:.2f}s: "
            f"{report['keys_per_sec'] / 1e6:.2f} Mkeys/s "
            f"({report['ns_per_key']:.1f} ns/key), "
            f"{report['hash_errors']} hash errors"
        )
        for event in report.get("swap_events", []):
            print(
                f"swap {event['route_id']} g{event['old_generation']}"
                f"->g{event['new_generation']} "
                f"({','.join(event['reasons'])}) "
                f"verified={event['verified']} in "
                f"{event['swap_ms']:.0f} ms"
            )
        if report["hash_errors"]:
            failures.append(f"{report['hash_errors']} hash errors")
        if report["delivered"] != report["submitted"]:
            failures.append(
                f"delivered {report['delivered']} != "
                f"submitted {report['submitted']}"
            )
        if args.assert_swaps is not None:
            swaps = len(report.get("swap_events", []))
            verified = sum(
                1
                for event in report.get("swap_events", [])
                if event["verified"]
            )
            if swaps != args.assert_swaps or verified != swaps:
                failures.append(
                    f"expected {args.assert_swaps} verified swaps, "
                    f"got {swaps} ({verified} verified)"
                )
        document = report
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json_module.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.report}")
    if failures:
        print("FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


def _run_perfect(args: argparse.Namespace) -> int:
    """Synthesize + certify perfect hashes for closed key sets.

    Exit code 1 means at least one requested key set was *refused*
    certification while ``--assert-certified`` was set — the CI
    ``perfect-gate`` job's failure signal.  Exit code 2 is an input
    error (unknown set name, unreadable key file).
    """
    import json as json_module

    from repro.errors import PerfectSearchError, SepeError
    from repro.perfect import (
        BUILTIN_KEY_SET_NAMES,
        builtin_key_set,
        pad_keys,
        rq_closed_set,
        synthesize_perfect,
    )

    targets: List[Tuple[str, Tuple[bytes, ...]]] = []
    try:
        builtin_names = list(args.builtin or [])
        if "all" in builtin_names:
            builtin_names = list(BUILTIN_KEY_SET_NAMES)
        for name in builtin_names:
            targets.append((f"builtin:{name}", builtin_key_set(name)))
        for name in args.rq or []:
            targets.append(
                (
                    f"rq:{name.lower()}",
                    tuple(
                        rq_closed_set(
                            name, count=args.count, seed=args.seed
                        )
                    ),
                )
            )
        if args.keys_file:
            with open(args.keys_file, "rb") as handle:
                lines = [line.rstrip(b"\r\n") for line in handle]
            targets.append(
                (
                    args.keys_file,
                    pad_keys([line for line in lines if line]),
                )
            )
    except (SepeError, KeyError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not targets:
        print(
            "error: nothing to certify; pass --builtin NAME|all, "
            "--rq NAME, or --keys-file FILE",
            file=sys.stderr,
        )
        return 2
    documents = []
    refusals = 0
    for label, keys in targets:
        try:
            perfect = synthesize_perfect(keys)
        except (PerfectSearchError, SepeError) as error:
            refusals += 1
            print(f"{label}: REFUSED — {error}")
            documents.append(
                {"key_set": label, "certified": False, "error": str(error)}
            )
            continue
        certificate = perfect.certificate
        print(
            f"{label}: certified {certificate.key_count} keys -> "
            f"{certificate.hash_bits}-bit hash, range "
            f"{certificate.range_size}, load "
            f"{certificate.load_factor:.3f}"
            + (" (minimal)" if certificate.minimal else "")
            + f", strategy {certificate.strategy or 'structural'}"
            + (" + rotation fallback" if certificate.fallback_used else "")
            + f", {certificate.evaluations} evaluations"
        )
        documents.append({"key_set": label, **certificate.to_dict()})
    if args.json:
        print(json_module.dumps(documents, indent=2, sort_keys=True))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json_module.dump(documents, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.report}")
    if refusals and args.assert_certified:
        print(
            f"FAILED: {refusals} key set(s) refused certification",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    from repro.bench import tables
    from repro.bench.report import render_table

    if args.compare:
        return _run_bench_compare(args)
    if args.batch:
        return _run_bench_batch(args)
    if args.table is None:
        print(
            "error: choose a table (1/2/3), --batch, or --compare",
            file=sys.stderr,
        )
        return 1
    if args.table == 1:
        rows = tables.table1(key_types=args.key_types, samples=args.samples)
    elif args.table == 2:
        rows = tables.table2(
            key_types=args.key_types, keys_per_type=args.keys
        )
    else:
        rows = tables.table3(key_types=args.key_types, samples=args.samples)
    print(render_table(rows, title=f"Table {args.table} (reduced scale)"))
    return 0


def _run_bench_batch(args: argparse.Namespace) -> int:
    """Scalar-vs-batch H-Time comparison (``sepe bench --batch``)."""
    from repro.bench.batch_compare import (
        compare_scalar_batch,
        render_comparison,
        write_report,
    )

    report = compare_scalar_batch(
        key_types=args.key_types,
        keys_per_type=args.keys,
        repeats=max(args.samples, 3),
    )
    print(render_comparison(report))
    if args.batch_out:
        write_report(report, args.batch_out)
        print(f"wrote {args.batch_out}")
    return 0


def _run_bench_compare(args: argparse.Namespace) -> int:
    """Noise-aware regression check against a committed ledger.

    Exit code 1 means at least one confirmed regression — the CI gate's
    failure signal; ``new``/``missing``/``skipped`` verdicts are
    informational only.
    """
    from repro.bench import ledger as bench_ledger

    baseline = bench_ledger.load_ledger(args.compare)
    if baseline is None:
        print(
            f"error: cannot read ledger {args.compare}", file=sys.stderr
        )
        return 2
    print(
        f"measuring smoke sample ({args.keys} keys x "
        f"{max(args.samples, 5)} repeats per cell)...",
        file=sys.stderr,
    )
    entries = bench_ledger.collect_smoke_entries(
        key_types=args.key_types,
        keys_per_type=args.keys,
        repeats=max(args.samples, 5),
    )
    # Serve scaling rows ride along whenever the baseline recorded any,
    # so the sharded hot path is regression-gated like the kernels.
    if any(
        entry_id.startswith("serve/scaling/")
        for entry_id in baseline.get("entries", {})
    ):
        entries.extend(bench_ledger.collect_serve_smoke_entries())
    # Likewise the perfect tier: whenever the baseline carries perfect/
    # rows, re-measure the certified lookup paths so a regression in the
    # perfect fast path fails the same gate.
    if any(
        entry_id.startswith("perfect/")
        for entry_id in baseline.get("entries", {})
    ):
        entries.extend(bench_ledger.collect_perfect_smoke_entries())
    verdicts = bench_ledger.compare_ledger(
        baseline,
        entries,
        threshold=args.threshold,
        allow_cross_host=args.allow_cross_host,
    )
    print(render_fingerprint_delta(baseline))
    print(bench_ledger.render_verdicts(verdicts))
    return 1 if bench_ledger.regression_count(verdicts) else 0


def render_fingerprint_delta(ledger: "dict") -> str:
    """One line stating whether baseline and current hosts match."""
    from repro.bench.ledger import fingerprint, fingerprints_comparable

    baseline = ledger.get("fingerprint", {})
    current = fingerprint()
    label = (
        "same host class"
        if fingerprints_comparable(baseline, current)
        else "DIFFERENT host class"
    )
    return (
        f"baseline {baseline.get('machine', '?')}/"
        f"py{baseline.get('python_version', '?')} vs current "
        f"{current['machine']}/py{current['python_version']} ({label})"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sepe",
        description="SEPE: synthesis of specialized hash functions.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    infer = subparsers.add_parser("infer", help="infer a regex from keys")
    infer.add_argument("file", nargs="?")
    infer.add_argument("--show-pattern", action="store_true")
    infer.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="shard the join over N worker processes (0 = all cores)",
    )
    infer.add_argument(
        "--engine",
        default="auto",
        choices=["auto", "bigint", "numpy", "reference"],
        help="inference engine (default: auto)",
    )

    synth = subparsers.add_parser("synth", help="synthesize from a regex")
    synth.add_argument("regex")
    synth.add_argument("--family", default="all")
    synth.add_argument("--emit", default="cpp", choices=["cpp", "python"])
    synth.add_argument("--target", default="x86", choices=["x86", "aarch64"])

    demo = subparsers.add_parser("demo", help="race synthetic vs STL hashes")
    demo.add_argument("key_type", nargs="?", default="SSN")
    demo.add_argument("--keys", type=int, default=10_000)

    subparsers.add_parser(
        "list-formats", help="list the built-in key formats"
    )

    explain = subparsers.add_parser(
        "explain", help="show how a format is analyzed and lowered"
    )
    explain.add_argument("regex")
    explain.add_argument("--family", default="pext")
    explain.add_argument("--final-mix", action="store_true")

    check = subparsers.add_parser(
        "validate", help="validate a synthesized hash against its format"
    )
    check.add_argument("regex")
    check.add_argument("--family", default="pext")
    check.add_argument("--final-mix", action="store_true")
    check.add_argument("--sample", type=int, default=2000)

    obs = subparsers.add_parser(
        "obs", help="trace a synthesis run; report spans and metrics"
    )
    obs.add_argument(
        "regex",
        nargs="?",
        default=r"\d{3}-\d{2}-\d{4}",
        help="format to synthesize under tracing (default: SSN)",
    )
    obs.add_argument("--family", default="pext")
    obs.add_argument(
        "--export",
        metavar="FILE",
        help="also write span events to FILE as JSON lines",
    )
    obs.add_argument(
        "--routes",
        type=int,
        default=5,
        help="conforming keys to route through the dispatcher demo",
    )
    obs.add_argument(
        "--metrics",
        action="store_true",
        help="print the process-wide metrics registry snapshot",
    )
    obs.add_argument(
        "--snapshot",
        metavar="FILE",
        help="write the metrics registry to FILE as JSON lines",
    )
    obs.add_argument(
        "--serve",
        action="store_true",
        help="expose /metrics over HTTP after the traced run",
    )
    obs.add_argument(
        "--port",
        type=int,
        default=9464,
        help="port for --serve (0 = ephemeral; default: 9464)",
    )
    obs.add_argument(
        "--serve-for",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --serve, stop after SECONDS instead of Ctrl-C",
    )

    profile = subparsers.add_parser(
        "profile", help="per-opcode timing profile for one format"
    )
    profile.add_argument(
        "regex",
        nargs="?",
        default=r"\d{3}-\d{2}-\d{4}",
        help="format to profile (default: SSN)",
    )
    profile.add_argument("--family", default="pext")
    profile.add_argument(
        "--keys",
        type=int,
        default=2000,
        help="conforming keys to profile over (default: 2000)",
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--batch",
        action="store_true",
        help="profile the vectorized batch kernel instead of the "
        "interpreter (falls back when the plan does not vectorize)",
    )
    profile.add_argument(
        "--json-out",
        metavar="FILE",
        help="also write the report as JSON to FILE",
    )

    fuzz = subparsers.add_parser(
        "fuzz", help="fuzz the pipeline with differential/metamorphic oracles"
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--budget",
        type=float,
        default=30.0,
        help="wall-clock seconds for the case loop (default: 30)",
    )
    fuzz.add_argument(
        "--max-cases",
        type=int,
        default=None,
        help="stop after exactly N cases regardless of budget",
    )
    fuzz.add_argument(
        "--oracles",
        nargs="*",
        metavar="NAME",
        help="run only these oracles (default: all; see --list-oracles)",
    )
    fuzz.add_argument(
        "--list-oracles",
        action="store_true",
        help="list oracle names and exit",
    )
    fuzz.add_argument(
        "--keys-per-case",
        type=int,
        default=24,
        help="conforming keys drawn per sampled format",
    )
    fuzz.add_argument(
        "--shrink-budget",
        type=float,
        default=5.0,
        help="seconds spent minimizing each distinct failure",
    )
    fuzz.add_argument(
        "--corpus",
        metavar="DIR",
        help="persist minimized reproducers under DIR",
    )
    fuzz.add_argument(
        "--report",
        metavar="FILE",
        help="also write the JSON report to FILE",
    )

    verify = subparsers.add_parser(
        "verify", help="statically verify a format's synthesis plans"
    )
    verify.add_argument("regex")
    verify.add_argument(
        "--family",
        default="all",
        choices=["all", "naive", "offxor", "aes", "pext"],
    )
    verify.add_argument("--final-mix", action="store_true")
    verify.add_argument(
        "--json",
        action="store_true",
        help="emit the full verification reports as JSON",
    )

    lint = subparsers.add_parser(
        "lint", help="lint synthesis plans for many formats (CI gate)"
    )
    lint.add_argument(
        "regexes", nargs="*", metavar="REGEX", help="formats to lint"
    )
    lint.add_argument(
        "--formats",
        action="store_true",
        help="lint every built-in key format",
    )
    lint.add_argument(
        "--corpus",
        metavar="DIR",
        help="also lint the formats of fuzz reproducers under DIR",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit all findings as JSON",
    )
    lint.add_argument(
        "--fail-on",
        default="error",
        choices=["error", "warning"],
        help="lowest severity that fails the run (default: error)",
    )

    analyze = subparsers.add_parser(
        "analyze",
        help="multi-domain static analysis: ranges, entropy, cost",
    )
    analyze.add_argument(
        "regexes", nargs="*", metavar="REGEX", help="formats to analyze"
    )
    analyze.add_argument(
        "--formats",
        action="store_true",
        help="analyze every built-in key format",
    )
    analyze.add_argument(
        "--corpus",
        metavar="DIR",
        help="also analyze the formats of fuzz reproducers under DIR",
    )
    analyze.add_argument(
        "--family",
        default="all",
        choices=["all", "naive", "offxor", "aes", "pext"],
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        help="emit the full analysis reports as JSON",
    )
    analyze.add_argument(
        "--json-out",
        metavar="FILE",
        help="also write the JSON reports to FILE",
    )

    serve = subparsers.add_parser(
        "serve",
        help="replay traffic through the sharded online hash service",
    )
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument("--threads", type=int, default=4)
    serve.add_argument(
        "--keys", type=int, default=50_000, help="keys per thread"
    )
    serve.add_argument(
        "--seconds",
        type=float,
        default=None,
        help="loop each thread's stream until this deadline",
    )
    serve.add_argument(
        "--drift",
        action="store_true",
        help="inject a mid-stream format change and run the reconciler",
    )
    serve.add_argument(
        "--drift-kind",
        choices=["widened_byte_class", "new_length"],
        default="widened_byte_class",
    )
    serve.add_argument("--reconcile-interval", type=float, default=0.1)
    serve.add_argument(
        "--assert-swaps",
        type=int,
        default=None,
        metavar="N",
        help="fail unless exactly N verified hot swaps occurred",
    )
    serve.add_argument(
        "--scaling",
        action="store_true",
        help="measure throughput across --shard-counts instead",
    )
    serve.add_argument(
        "--shard-counts", type=int, nargs="*", default=[1, 2, 4]
    )
    serve.add_argument("--repeats", type=int, default=3)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--report", default=None, help="write the JSON report here"
    )

    perfect = subparsers.add_parser(
        "perfect",
        help="synthesize + certify perfect hashes for closed key sets",
    )
    perfect.add_argument(
        "--builtin",
        nargs="*",
        metavar="NAME",
        help="built-in closed key sets to certify "
        "(c-keywords, http-methods, enum-codec, or 'all')",
    )
    perfect.add_argument(
        "--rq",
        nargs="*",
        metavar="NAME",
        help="closed samples of paper RQ key formats (SSN, MAC, ...)",
    )
    perfect.add_argument(
        "--count",
        type=int,
        default=1000,
        help="keys per --rq closed sample (default: 1000)",
    )
    perfect.add_argument("--seed", type=int, default=0)
    perfect.add_argument(
        "--keys-file",
        metavar="FILE",
        help="certify the newline-separated keys in FILE "
        "(padded to a common width)",
    )
    perfect.add_argument(
        "--json",
        action="store_true",
        help="also print the certificates as JSON",
    )
    perfect.add_argument(
        "--report",
        metavar="FILE",
        help="write the certificates as JSON to FILE",
    )
    perfect.add_argument(
        "--assert-certified",
        action="store_true",
        help="exit 1 if any requested key set is refused (CI gate)",
    )

    bench = subparsers.add_parser("bench", help="run a paper table")
    bench.add_argument(
        "table", type=int, choices=[1, 2, 3], nargs="?", default=None
    )
    bench.add_argument("--key-types", nargs="*", default=["SSN", "MAC"])
    bench.add_argument("--samples", type=int, default=2)
    bench.add_argument("--keys", type=int, default=20_000)
    bench.add_argument(
        "--batch",
        action="store_true",
        help="compare scalar vs batched H-Time instead of a paper table",
    )
    bench.add_argument(
        "--batch-out",
        metavar="FILE",
        help="with --batch, also write the comparison as JSON to FILE",
    )
    bench.add_argument(
        "--compare",
        metavar="LEDGER",
        help="measure a smoke sample and verdict it against LEDGER "
        "(exit 1 on confirmed regressions)",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="with --compare, slowdown ratio that counts as a "
        "regression (default: 1.5)",
    )
    bench.add_argument(
        "--allow-cross-host",
        action="store_true",
        help="with --compare, compare across machine fingerprints "
        "at a loosened threshold instead of skipping",
    )

    full = subparsers.add_parser(
        "bench-full", help="regenerate every table and figure"
    )
    full.add_argument(
        "--scale", choices=["smoke", "reduced", "paper"], default="smoke"
    )
    full.add_argument("--out", default="benchmarks/out")

    return parser


def run(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "infer":
        return keybuilder.run(
            ([args.file] if args.file else [])
            + (["--show-pattern"] if args.show_pattern else [])
            + ["--jobs", str(args.jobs), "--engine", args.engine]
        )
    if args.command == "synth":
        argv_out = [args.regex, "--emit", args.emit, "--target", args.target]
        if args.family:
            argv_out += ["--family", args.family]
        return keysynth.run(argv_out)
    if args.command == "demo":
        return _run_demo(args)
    if args.command == "list-formats":
        return _run_list_formats()
    if args.command == "explain":
        return _run_explain(args)
    if args.command == "validate":
        return _run_validate(args)
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "profile":
        return _run_profile(args)
    if args.command == "fuzz":
        return _run_fuzz(args)
    if args.command == "verify":
        return _run_verify(args)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "analyze":
        return _run_analyze(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "perfect":
        return _run_perfect(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "bench-full":
        from repro.bench.full_run import run_all

        reports = run_all(
            scale=args.scale,
            out_dir=args.out,
            progress=lambda name: print(f"[done] {name}"),
        )
        print(f"wrote {len(reports)} reports to {args.out}/")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


def main() -> None:  # pragma: no cover - console-script shim
    raise SystemExit(run())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Seeded format and key generators for the fuzzing subsystem.

The fuzzer does not sample regex *strings* — it samples a structured
:class:`FormatSpec` (a sequence of byte-class pieces plus an optional
variable tail) and derives the regex from it.  Structure is what makes
shrinking possible: the minimizer can drop a piece and slice the
corresponding byte span out of every key, keeping the (format, key-set)
pair consistent at every step.

Sampling is stratified along the paper's three constraint axes:

- **length** — body size, fixed length vs bounded tail (``.{0,k}``) vs
  unbounded tail (``.*``);
- **const** — what fraction of the body is fully-constant separator
  bytes (the paper's OffXor axis: constant subsequences to skip);
- **range** — how wide each varying position's byte class is, from
  two-byte sets through digits/hex/letters up to "any byte" (the Pext
  axis: which bits of a byte are constant).

Mutation operators perturb a spec along exactly *one* axis, so a fuzz
campaign can walk the format space locally instead of only sampling
independently.  Every function here draws randomness exclusively from
the ``random.Random`` instance it is handed — no module-level RNG, no
hidden state — which is what makes a fuzz run replayable from its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.regex_render import _escape_literal, _render_ranges

UNBOUNDED = -1
"""``FormatSpec.tail`` value for an unbounded ``.*`` tail."""

_SEPARATORS = b"-._:/ ,;"
"""Constant-piece byte pool: the separators real-world formats use."""

_UNBOUNDED_SAMPLE_TAIL = 12
"""Longest tail drawn for unbounded-tail formats when sampling keys."""

ALPHABETS = {
    "digits": bytes(range(ord("0"), ord("9") + 1)),
    "lower": bytes(range(ord("a"), ord("z") + 1)),
    "upper": bytes(range(ord("A"), ord("Z") + 1)),
    "hex": bytes(range(ord("0"), ord("9") + 1))
    + bytes(range(ord("a"), ord("f") + 1)),
    "alnum": bytes(range(ord("0"), ord("9") + 1))
    + bytes(range(ord("A"), ord("Z") + 1))
    + bytes(range(ord("a"), ord("z") + 1)),
    "binary": b"01",
    "octal": bytes(range(ord("0"), ord("7") + 1)),
    "printable": bytes(range(0x20, 0x7F)),
    "any": bytes(range(0x100)),
}
"""Named byte pools the range axis draws classes from."""

_POOL_NAMES = tuple(ALPHABETS)


@dataclass(frozen=True)
class Piece:
    """One run of identically-classed body bytes.

    Attributes:
        length: how many consecutive key bytes this piece covers.
        alphabet: the sorted, distinct byte values each of those
            positions admits; a single byte makes the piece constant.
    """

    length: int
    alphabet: bytes

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("piece length must be positive")
        if not self.alphabet:
            raise ValueError("piece alphabet must be non-empty")
        canonical = bytes(sorted(set(self.alphabet)))
        if canonical != self.alphabet:
            object.__setattr__(self, "alphabet", canonical)

    @property
    def is_const(self) -> bool:
        """True when every position of this piece is one fixed byte."""
        return len(self.alphabet) == 1

    def fragment(self) -> str:
        """The regex fragment for one position of this piece."""
        if self.is_const:
            return _escape_literal(self.alphabet[0])
        return "[" + _render_ranges(sorted(self.alphabet)) + "]"


@dataclass(frozen=True)
class FormatSpec:
    """A fuzzable key format: body pieces plus an optional tail.

    Attributes:
        pieces: the fixed body, in key order.
        tail: ``0`` for a fixed-length format, ``k > 0`` for a bounded
            ``.{0,k}`` tail, :data:`UNBOUNDED` for a trailing ``.*``.
    """

    pieces: Tuple[Piece, ...]
    tail: int = 0

    def __post_init__(self) -> None:
        if self.tail < UNBOUNDED:
            raise ValueError(f"invalid tail: {self.tail}")

    @property
    def body_length(self) -> int:
        """Bytes guaranteed present in every conforming key."""
        return sum(piece.length for piece in self.pieces)

    @property
    def is_fixed_length(self) -> bool:
        return self.tail == 0

    def regex(self) -> str:
        """Render the spec as a format regex the pipeline accepts."""
        parts: List[str] = []
        for piece in self.pieces:
            fragment = piece.fragment()
            if piece.length > 1:
                parts.append(f"{fragment}{{{piece.length}}}")
            else:
                parts.append(fragment)
        if self.tail == UNBOUNDED:
            parts.append(".*")
        elif self.tail > 0:
            parts.append(f".{{0,{self.tail}}}")
        return "".join(parts)

    def piece_spans(self) -> List[Tuple[int, int]]:
        """Byte span ``(start, end)`` of each piece within a key."""
        spans: List[Tuple[int, int]] = []
        position = 0
        for piece in self.pieces:
            spans.append((position, position + piece.length))
            position += piece.length
        return spans

    def sample_key(self, rng: random.Random) -> bytes:
        """Draw one conforming key from the spec."""
        key = bytearray()
        for piece in self.pieces:
            alphabet = piece.alphabet
            for _ in range(piece.length):
                key.append(alphabet[rng.randrange(len(alphabet))])
        if self.tail == UNBOUNDED:
            tail_length = rng.randint(0, _UNBOUNDED_SAMPLE_TAIL)
        elif self.tail > 0:
            tail_length = rng.randint(0, self.tail)
        else:
            tail_length = 0
        for _ in range(tail_length):
            key.append(rng.randrange(0x100))
        return bytes(key)


def sample_keys(
    spec: FormatSpec, rng: random.Random, count: int
) -> List[bytes]:
    """Draw ``count`` conforming keys (duplicates possible, as in life)."""
    return [spec.sample_key(rng) for _ in range(count)]


def sample_format(
    rng: random.Random,
    min_body: int = 8,
    max_body: int = 40,
) -> FormatSpec:
    """Sample a random-but-valid format, stratified along the three axes.

    The result always has a body of at least ``min_body`` bytes, so it
    is synthesizable by default (the paper refuses sub-word formats).
    """
    # Length axis: body size and tail shape.
    target_body = rng.randint(min_body, max_body)
    tail_kind = rng.random()
    if tail_kind < 0.70:
        tail = 0
    elif tail_kind < 0.85:
        tail = rng.randint(1, 8)
    else:
        tail = UNBOUNDED
    # Const axis: fraction of constant separator bytes.
    const_fraction = rng.choice((0.0, 0.0, 0.15, 0.3, 0.5))
    # Range axis: which pool varying classes come from ("mixed" redraws
    # the pool per piece).
    pool_name = rng.choice(_POOL_NAMES + ("mixed",))
    pieces: List[Piece] = []
    body = 0
    while body < target_body:
        length = min(rng.randint(1, 6), target_body - body)
        if pieces and rng.random() < const_fraction:
            byte = _SEPARATORS[rng.randrange(len(_SEPARATORS))]
            pieces.append(Piece(length, bytes([byte])))
        else:
            name = (
                rng.choice(_POOL_NAMES) if pool_name == "mixed" else pool_name
            )
            pieces.append(Piece(length, ALPHABETS[name]))
        body += length
    return FormatSpec(tuple(pieces), tail)


# -- mutation operators (one axis at a time) --------------------------------


def mutate_length(spec: FormatSpec, rng: random.Random) -> FormatSpec:
    """Perturb the length axis: resize a piece or reshape the tail."""
    choice = rng.random()
    if choice < 0.4 or not spec.pieces:
        # Reshape the tail: fixed -> bounded -> unbounded -> fixed.
        if spec.tail == 0:
            tail = rng.randint(1, 8) if rng.random() < 0.5 else UNBOUNDED
        elif spec.tail == UNBOUNDED:
            tail = 0
        else:
            tail = 0 if rng.random() < 0.5 else UNBOUNDED
        return replace(spec, tail=tail)
    index = rng.randrange(len(spec.pieces))
    piece = spec.pieces[index]
    delta = rng.choice((-2, -1, 1, 2, 3))
    new_length = max(1, piece.length + delta)
    pieces = list(spec.pieces)
    pieces[index] = replace(piece, length=new_length)
    return replace(spec, pieces=tuple(pieces))


def mutate_const(spec: FormatSpec, rng: random.Random) -> FormatSpec:
    """Perturb the const axis: freeze a class piece or thaw a constant."""
    if not spec.pieces:
        return spec
    index = rng.randrange(len(spec.pieces))
    piece = spec.pieces[index]
    pieces = list(spec.pieces)
    if piece.is_const:
        name = rng.choice(_POOL_NAMES)
        pieces[index] = replace(piece, alphabet=ALPHABETS[name])
    else:
        byte = piece.alphabet[rng.randrange(len(piece.alphabet))]
        pieces[index] = replace(piece, alphabet=bytes([byte]))
    return replace(spec, pieces=tuple(pieces))


def mutate_range(spec: FormatSpec, rng: random.Random) -> FormatSpec:
    """Perturb the range axis: widen or narrow one piece's byte class."""
    class_indexes = [
        index
        for index, piece in enumerate(spec.pieces)
        if not piece.is_const
    ]
    if not class_indexes:
        return mutate_const(spec, rng)
    index = class_indexes[rng.randrange(len(class_indexes))]
    piece = spec.pieces[index]
    pieces = list(spec.pieces)
    if rng.random() < 0.5:
        widened = bytes(
            sorted(
                set(piece.alphabet)
                | set(ALPHABETS[rng.choice(_POOL_NAMES)])
            )
        )
        pieces[index] = replace(piece, alphabet=widened)
    else:
        size = max(2, len(piece.alphabet) // 2)
        narrowed = bytes(sorted(rng.sample(list(piece.alphabet), size)))
        pieces[index] = replace(piece, alphabet=narrowed)
    return replace(spec, pieces=tuple(pieces))


MUTATORS = {
    "length": mutate_length,
    "const": mutate_const,
    "range": mutate_range,
}
"""One mutation operator per constraint axis."""


def mutate_format(
    spec: FormatSpec, rng: random.Random, axis: Optional[str] = None
) -> FormatSpec:
    """Mutate a spec along ``axis`` (or a random one).

    Raises:
        KeyError: for an unknown axis name.
    """
    if axis is None:
        axis = rng.choice(tuple(MUTATORS))
    return MUTATORS[axis](spec, rng)


def conforms(spec: FormatSpec, key: bytes) -> bool:
    """Check a key against the spec exactly (not the quad widening)."""
    body = spec.body_length
    if len(key) < body:
        return False
    if spec.tail == 0 and len(key) != body:
        return False
    if spec.tail > 0 and len(key) > body + spec.tail:
        return False
    position = 0
    for piece in spec.pieces:
        for _ in range(piece.length):
            if key[position] not in piece.alphabet:
                return False
            position += 1
    return True

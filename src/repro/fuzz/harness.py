"""The seeded, time-budgeted fuzz loop.

One call to :func:`run_fuzz` is one campaign: sample a format, draw
conforming keys, run every selected oracle, repeat until the time
budget (or case cap) runs out.  Half the formats are fresh samples and
half are single-axis mutations of the previous format, so the campaign
both covers the format space and walks it locally — mutation is where
the length/const/range boundary bugs live.

Failure handling:

- an oracle returning a message is a failure; an exception escaping an
  oracle is converted to a ``crash: ...`` failure (a valid format must
  never crash the pipeline);
- failures are deduplicated by (oracle, message-prefix) signature, so
  one bug found two hundred times produces one reproducer, not two
  hundred;
- each new failure is greedily shrunk (:mod:`repro.fuzz.shrink`) and,
  when a corpus directory is configured, persisted as a replayable
  JSON reproducer (:mod:`repro.fuzz.corpus`).

Everything is driven by one ``random.Random(seed)`` stream, so a
campaign is replayable from its seed alone.  Observability: the loop
runs under ``repro.obs`` spans and bumps ``fuzz.cases``,
``fuzz.oracle.<name>.executions`` and ``fuzz.oracle.<name>.failures``
counters, which is how a nightly job graphs executions-per-second.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.fuzz import shrink as shrink_module
from repro.fuzz.corpus import save_reproducer
from repro.fuzz.generators import (
    FormatSpec,
    mutate_format,
    sample_format,
    sample_keys,
)
from repro.fuzz.oracles import (
    CaseContext,
    FuzzCase,
    Oracle,
    resolve_oracles,
)
from repro.obs import get_registry, span


@dataclass
class FuzzConfig:
    """Everything one fuzz campaign needs.

    Attributes:
        seed: root of the campaign's single RNG stream.
        budget_seconds: wall-clock budget for the case loop (shrinking
            failing cases is budgeted separately, per failure).
        max_cases: optional hard cap on cases, for exact-count runs.
        oracles: oracle names to run; ``None`` means all of them.
        keys_per_case: conforming keys drawn per sampled format.
        mutate_fraction: fraction of cases derived by mutating the
            previous format instead of sampling fresh.
        shrink_seconds: budget for minimizing each distinct failure.
        corpus_dir: where to persist reproducers; ``None`` disables
            persistence (failures are still shrunk and reported).
        max_failures: stop the campaign early after this many distinct
            failures — a broken build would otherwise spend the whole
            budget shrinking.
    """

    seed: int = 0
    budget_seconds: float = 10.0
    max_cases: Optional[int] = None
    oracles: Optional[Sequence[str]] = None
    keys_per_case: int = 24
    mutate_fraction: float = 0.5
    shrink_seconds: float = shrink_module.DEFAULT_SHRINK_SECONDS
    corpus_dir: Optional[Path] = None
    max_failures: int = 8


@dataclass
class FuzzFailure:
    """One distinct bug: the oracle, the message, the minimized case."""

    oracle: str
    message: str
    case: FuzzCase
    shrunk: FuzzCase
    reproducer_path: Optional[Path] = None

    def to_dict(self) -> Dict:
        from repro.fuzz.corpus import case_to_dict

        return {
            "oracle": self.oracle,
            "message": self.message,
            "regex": self.shrunk.spec.regex(),
            "keys": len(self.shrunk.keys),
            "case": case_to_dict(self.shrunk),
            "reproducer": (
                str(self.reproducer_path) if self.reproducer_path else None
            ),
        }


@dataclass
class FuzzReport:
    """What a campaign did: counts per oracle plus distinct failures."""

    seed: int
    cases: int = 0
    elapsed_seconds: float = 0.0
    executions: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def total_executions(self) -> int:
        return sum(self.executions.values())

    def to_dict(self) -> Dict:
        per_oracle = {
            name: {
                "executions": count,
                "failures": sum(
                    1 for failure in self.failures if failure.oracle == name
                ),
            }
            for name, count in sorted(self.executions.items())
        }
        rate = (
            self.total_executions / self.elapsed_seconds
            if self.elapsed_seconds > 0
            else 0.0
        )
        return {
            "seed": self.seed,
            "ok": self.ok,
            "cases": self.cases,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "total_executions": self.total_executions,
            "executions_per_second": round(rate, 1),
            "oracles": per_oracle,
            "failures": [failure.to_dict() for failure in self.failures],
        }


def _signature(oracle: str, message: str) -> str:
    """Dedup key: oracle plus the shape of the message, not its data."""
    return f"{oracle}:{message.split(' for ')[0][:80]}"


def _failing_oracle_check(oracle: Oracle):
    """A shrink predicate: does this oracle still fail on the case?"""

    def check(candidate: FuzzCase) -> bool:
        try:
            return oracle.run(CaseContext(candidate)) is not None
        except Exception:
            return True  # Still crashing counts as still failing.

    return check


def _run_oracles(
    oracles: Sequence[Oracle],
    case: FuzzCase,
    report: FuzzReport,
    registry,
) -> List[tuple]:
    """Run every oracle on one case; returns raw (oracle, message) hits."""
    ctx = CaseContext(case)
    hits = []
    for oracle in oracles:
        report.executions[oracle.name] = (
            report.executions.get(oracle.name, 0) + 1
        )
        registry.counter(f"fuzz.oracle.{oracle.name}.executions").inc()
        try:
            message = oracle.run(ctx)
        except Exception as error:
            message = f"crash: {type(error).__name__}: {error}"
        if message is not None:
            registry.counter(
                f"fuzz.oracle.{oracle.name}.failures"
            ).inc()
            hits.append((oracle, message))
    return hits


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run one fuzz campaign; never raises for bugs it *finds*.

    Raises:
        KeyError: for unknown oracle names in the config.
    """
    oracles = resolve_oracles(
        list(config.oracles) if config.oracles is not None else None
    )
    rng = random.Random(config.seed)
    registry = get_registry()
    report = FuzzReport(seed=config.seed)
    seen_signatures: Dict[str, bool] = {}
    previous_spec: Optional[FormatSpec] = None
    started = time.monotonic()
    deadline = started + config.budget_seconds
    with span("fuzz.campaign", seed=config.seed):
        while time.monotonic() < deadline:
            if (
                config.max_cases is not None
                and report.cases >= config.max_cases
            ):
                break
            if len(report.failures) >= config.max_failures:
                break
            if (
                previous_spec is not None
                and rng.random() < config.mutate_fraction
            ):
                spec = mutate_format(previous_spec, rng)
            else:
                spec = sample_format(rng)
            previous_spec = spec
            keys = sample_keys(spec, rng, config.keys_per_case)
            case = FuzzCase(spec, tuple(keys))
            report.cases += 1
            registry.counter("fuzz.cases").inc()
            hits = _run_oracles(oracles, case, report, registry)
            for oracle, message in hits:
                signature = _signature(oracle.name, message)
                if signature in seen_signatures:
                    continue
                seen_signatures[signature] = True
                with span("fuzz.shrink", oracle=oracle.name):
                    shrunk = shrink_module.shrink_case(
                        case,
                        _failing_oracle_check(oracle),
                        seconds=config.shrink_seconds,
                    )
                failure = FuzzFailure(
                    oracle=oracle.name,
                    message=message,
                    case=case,
                    shrunk=shrunk,
                )
                if config.corpus_dir is not None:
                    failure.reproducer_path = save_reproducer(
                        shrunk,
                        oracle.name,
                        message,
                        directory=config.corpus_dir,
                        seed=config.seed,
                    )
                report.failures.append(failure)
    report.elapsed_seconds = time.monotonic() - started
    return report

"""Greedy minimization of failing fuzz cases.

Once an oracle fails, the raw case is noise: dozens of keys, a format
with many irrelevant pieces.  The shrinker reduces both coordinates of
the (format, key-set) pair while re-checking the failure after every
candidate step, ending at a local minimum that is small enough to read,
to commit as a corpus reproducer, and to step through under a debugger.

Reduction passes, in order (each runs to a fixpoint):

1. **keys** — ddmin-style: drop chunks of the key list, halving the
   chunk size down to single keys;
2. **structure** — drop whole pieces from the spec (slicing the
   corresponding byte span out of every key), shorten pieces, and
   remove the variable tail (truncating keys to the body);
3. **bytes** — canonicalize surviving key bytes to each piece's
   smallest admissible byte, whole-key first, then byte by byte.

The predicate is "this oracle still fails", not "fails with the same
message" — greedy shrinking may slide between manifestations of the
same bug, which is standard and acceptable (delta debugging's ddmin has
the same property).  A wall-clock deadline bounds the whole search, so
a pathological case cannot stall the fuzz loop.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable, List, Optional, Tuple

from repro.fuzz.generators import FormatSpec, Piece
from repro.fuzz.oracles import FuzzCase

CheckFn = Callable[[FuzzCase], bool]
"""Returns True when the candidate case still reproduces the failure."""

DEFAULT_SHRINK_SECONDS = 5.0


class _Budget:
    """Wall-clock deadline shared by every pass of one shrink run."""

    def __init__(self, seconds: float):
        self._deadline = time.monotonic() + seconds

    def expired(self) -> bool:
        return time.monotonic() >= self._deadline


def shrink_case(
    case: FuzzCase,
    check: CheckFn,
    seconds: float = DEFAULT_SHRINK_SECONDS,
) -> FuzzCase:
    """Minimize a failing case under ``check`` within ``seconds``.

    ``check`` must return True for ``case`` itself; the result is the
    smallest case found for which ``check`` still returns True.
    """
    budget = _Budget(seconds)
    best = case
    changed = True
    while changed and not budget.expired():
        changed = False
        reduced = _shrink_keys(best, check, budget)
        if reduced is not best:
            best, changed = reduced, True
        reduced = _shrink_structure(best, check, budget)
        if reduced is not best:
            best, changed = reduced, True
    best = _shrink_bytes(best, check, budget)
    return best


# -- pass 1: the key list ----------------------------------------------------


def _shrink_keys(case: FuzzCase, check: CheckFn, budget: _Budget) -> FuzzCase:
    """Drop chunks of keys, halving chunk size — classic ddmin shape."""
    keys = list(case.keys)
    chunk = max(1, len(keys) // 2)
    best = case
    while chunk >= 1 and len(keys) > 1:
        index = 0
        while index < len(keys) and len(keys) > 1:
            if budget.expired():
                return best
            candidate_keys = keys[:index] + keys[index + chunk :]
            if not candidate_keys:
                index += chunk
                continue
            candidate = FuzzCase(best.spec, tuple(candidate_keys))
            if check(candidate):
                keys = candidate_keys
                best = candidate
            else:
                index += chunk
        chunk //= 2
    return best


# -- pass 2: the format structure --------------------------------------------


def _remove_span(keys: Tuple[bytes, ...], start: int, end: int) -> List[bytes]:
    """Slice byte span [start, end) out of every key."""
    return [key[:start] + key[end:] for key in keys]


def _shrink_structure(
    case: FuzzCase, check: CheckFn, budget: _Budget
) -> FuzzCase:
    """Drop pieces, shorten pieces, and drop the tail, re-slicing keys."""
    best = case
    # Drop the variable tail first: truncating keys to the body is the
    # single biggest simplification for variable-length failures.
    if best.spec.tail != 0:
        body = best.spec.body_length
        candidate = FuzzCase(
            replace(best.spec, tail=0),
            tuple(key[:body] for key in best.keys),
        )
        if not budget.expired() and check(candidate):
            best = candidate
    progress = True
    while progress and not budget.expired():
        progress = False
        spans = best.spec.piece_spans()
        for index in range(len(best.spec.pieces)):
            if budget.expired():
                return best
            start, end = spans[index]
            # Try removing the piece outright.
            pieces = (
                best.spec.pieces[:index] + best.spec.pieces[index + 1 :]
            )
            if pieces:
                candidate = FuzzCase(
                    replace(best.spec, pieces=pieces),
                    tuple(_remove_span(best.keys, start, end)),
                )
                if check(candidate):
                    best = candidate
                    progress = True
                    break
            # Try shrinking the piece to a single byte.
            piece = best.spec.pieces[index]
            if piece.length > 1:
                pieces = (
                    best.spec.pieces[:index]
                    + (replace(piece, length=1),)
                    + best.spec.pieces[index + 1 :]
                )
                candidate = FuzzCase(
                    replace(best.spec, pieces=pieces),
                    tuple(_remove_span(best.keys, start + 1, end)),
                )
                if check(candidate):
                    best = candidate
                    progress = True
                    break
    return best


# -- pass 3: the key bytes ---------------------------------------------------


def _canonical_key(spec: FormatSpec, key: bytes) -> bytes:
    """The key with every body byte replaced by its piece's minimum."""
    out = bytearray(key)
    position = 0
    for piece in spec.pieces:
        low = piece.alphabet[0]
        for _ in range(piece.length):
            if position >= len(out):
                return bytes(out)
            out[position] = low
            position += 1
    for index in range(position, len(out)):
        out[index] = 0
    return bytes(out)


def _shrink_bytes(case: FuzzCase, check: CheckFn, budget: _Budget) -> FuzzCase:
    """Canonicalize key bytes: whole key first, then position by position."""
    best = case
    for key_index, key in enumerate(best.keys):
        if budget.expired():
            return best
        canonical = _canonical_key(best.spec, key)
        if canonical != key:
            keys = list(best.keys)
            keys[key_index] = canonical
            candidate = FuzzCase(best.spec, tuple(keys))
            if check(candidate):
                best = candidate
                continue
        # Whole-key canonicalization broke reproduction; go byte by byte.
        for position in range(len(key)):
            if budget.expired():
                return best
            current = best.keys[key_index]
            low = canonical[position] if position < len(canonical) else 0
            if current[position] == low:
                continue
            mutated = bytearray(current)
            mutated[position] = low
            keys = list(best.keys)
            keys[key_index] = bytes(mutated)
            candidate = FuzzCase(best.spec, tuple(keys))
            if check(candidate):
                best = candidate
    return best

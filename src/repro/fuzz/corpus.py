"""Persistence and replay of minimized fuzz reproducers.

Every failure the fuzzer shrinks is worth keeping: a reproducer file is
a regression test that costs nothing to run and pins the exact (format,
key-set) pair that once broke an invariant.  Reproducers live under
``tests/corpora/`` as small JSON documents — versioned, diff-friendly,
with keys and alphabets base64-encoded so arbitrary bytes survive the
trip through text.

Replay is deterministic by construction: a corpus entry records which
oracle failed and the exact case; :func:`replay_case` re-runs that
oracle (or all of them) with no randomness involved.
"""

from __future__ import annotations

import base64
import hashlib
import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.fuzz.generators import UNBOUNDED, FormatSpec, Piece
from repro.fuzz.oracles import CaseContext, FuzzCase, resolve_oracles

CORPUS_VERSION = 1

DEFAULT_CORPUS_DIR = Path("tests") / "corpora"


def _encode_bytes(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _decode_bytes(data: str) -> bytes:
    return base64.b64decode(data.encode("ascii"))


def case_to_dict(case: FuzzCase) -> Dict:
    """A JSON-ready dict for one case (no failure metadata)."""
    return {
        "spec": {
            "pieces": [
                {
                    "length": piece.length,
                    "alphabet": _encode_bytes(piece.alphabet),
                }
                for piece in case.spec.pieces
            ],
            "tail": case.spec.tail,
        },
        "keys": [_encode_bytes(key) for key in case.keys],
    }


def case_from_dict(data: Dict) -> FuzzCase:
    """Rebuild a case from :func:`case_to_dict` output."""
    spec_data = data["spec"]
    pieces = tuple(
        Piece(entry["length"], _decode_bytes(entry["alphabet"]))
        for entry in spec_data["pieces"]
    )
    spec = FormatSpec(pieces, spec_data.get("tail", 0))
    keys = tuple(_decode_bytes(entry) for entry in data["keys"])
    return FuzzCase(spec, keys)


def reproducer_to_dict(
    case: FuzzCase,
    oracle: str,
    message: str,
    seed: Optional[int] = None,
) -> Dict:
    """The full corpus-file document for one minimized failure."""
    document = {
        "version": CORPUS_VERSION,
        "oracle": oracle,
        "message": message,
        "regex": case.spec.regex(),
        "case": case_to_dict(case),
    }
    if seed is not None:
        document["seed"] = seed
    return document


def _slug(oracle: str, case: FuzzCase) -> str:
    payload = json.dumps(case_to_dict(case), sort_keys=True).encode()
    digest = hashlib.sha1(payload).hexdigest()[:8]
    safe = re.sub(r"[^a-z0-9-]", "-", oracle.lower())
    return f"{safe}-{digest}.json"


def save_reproducer(
    case: FuzzCase,
    oracle: str,
    message: str,
    directory: Path,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> Path:
    """Write one reproducer file; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (name or _slug(oracle, case))
    document = reproducer_to_dict(case, oracle, message, seed=seed)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_reproducer(path: Path) -> Tuple[FuzzCase, str, str]:
    """Read one reproducer file: (case, oracle name, original message).

    Raises:
        ValueError: for an unsupported corpus version.
    """
    document = json.loads(Path(path).read_text())
    version = document.get("version")
    if version != CORPUS_VERSION:
        raise ValueError(
            f"{path}: corpus version {version!r}, expected {CORPUS_VERSION}"
        )
    case = case_from_dict(document["case"])
    return case, document["oracle"], document.get("message", "")


def corpus_files(directory: Path) -> List[Path]:
    """All reproducer files under ``directory``, sorted for determinism."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


def replay_case(
    case: FuzzCase, oracle_name: Optional[str] = None
) -> List[Tuple[str, str]]:
    """Run oracles against a case; returns (oracle, message) failures.

    With ``oracle_name`` only that oracle runs (the usual regression
    check); with ``None`` every registered oracle runs, which is how a
    reproducer for one bug can flag a second.  Exceptions escaping an
    oracle are reported as ``crash: ...`` failures, mirroring the
    harness.
    """
    names = [oracle_name] if oracle_name is not None else None
    failures: List[Tuple[str, str]] = []
    ctx = CaseContext(case)
    for oracle in resolve_oracles(names):
        try:
            message = oracle.run(ctx)
        except Exception as error:  # crash = failure, by design
            message = f"crash: {type(error).__name__}: {error}"
        if message is not None:
            failures.append((oracle.name, message))
    return failures


def replay_corpus(directory: Path) -> Dict[str, List[Tuple[str, str]]]:
    """Replay every reproducer in a directory.

    Returns a mapping from file name to its (oracle, message) failures —
    empty lists mean the historical bug stays fixed.
    """
    results: Dict[str, List[Tuple[str, str]]] = {}
    for path in corpus_files(directory):
        case, oracle_name, _ = load_reproducer(path)
        results[path.name] = replay_case(case, oracle_name)
    return results

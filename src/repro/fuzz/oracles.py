"""Differential and metamorphic oracles over one fuzz case.

An *oracle* is a predicate that must hold for **every** valid (format,
key-set) pair, not just the paper's eight formats.  Two groups:

- **differential** — independently-implemented execution paths must
  agree bit for bit: compiled Python vs the IR interpreter, batch vs
  scalar kernels, all inference engines vs the reference join, a plan
  round-tripped through JSON vs the original, the rendered regex vs
  Python's own ``re`` engine, the JIT-compiled native entry points vs
  the interpreter (auto-skipped, with a recorded reason, on hosts
  without a C++ compiler).
- **metamorphic** — algebraic laws of the pipeline itself: the quad
  join is a commutative, associative, idempotent monoid fold
  (Definition 3.2 / Theorem 3.3), Pext masks partition exactly the
  varying bits, dispatcher routing is deterministic, containers stay
  coherent under any synthesized hash.

Oracles receive a :class:`CaseContext` (which lazily synthesizes and
caches per-case artifacts so several oracles share one synthesis) and
return ``None`` on success or a failure message.  Degenerate cases an
oracle cannot judge (e.g. sub-word bodies, which synthesis refuses by
design) are *skipped* by returning ``None`` — a skip is not evidence.

Crashes are not caught here: the harness treats any exception escaping
an oracle as a failure in its own right, because "valid format crashes
the pipeline" is exactly the class of bug the fuzzer exists to find.
"""

from __future__ import annotations

import random
import re as stdlib_re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.codegen.interp import interpret
from repro.codegen.ir import IRFunction, build_ir, optimize
from repro.codegen.serialize import compile_serialized, dumps, loads
from repro.core.fast_infer import PatternAccumulator, numpy_available
from repro.core.inference import infer_pattern
from repro.core.pattern import KeyPattern
from repro.core.plan import HashFamily
from repro.core.quads import leq
from repro.core.regex_expand import pattern_from_regex
from repro.core.regex_render import render_regex
from repro.core.synthesis import SynthesizedHash, build_plan, synthesize
from repro.core.validate import sample_conforming_keys
from repro.verify import prove_bijectivity
from repro.containers import UnorderedMap
from repro.core.dispatch import FormatDispatcher
from repro.errors import SynthesisError
from repro.fuzz.generators import FormatSpec
from repro.hashes.murmur_stl import stl_hash_bytes
from repro.isa.bits import popcount

GROUP_DIFFERENTIAL = "differential"
GROUP_METAMORPHIC = "metamorphic"

_SMALL_BATCH = 3
"""Batch size forced through the generated loop fallback (below the
vectorized guard's minimum) so both batch lowerings are exercised."""


@dataclass(frozen=True)
class FuzzCase:
    """One unit of fuzz work: a format spec plus conforming keys."""

    spec: FormatSpec
    keys: Tuple[bytes, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.keys, tuple):
            object.__setattr__(self, "keys", tuple(self.keys))


class CaseContext:
    """Lazily-built, per-case artifacts shared by all oracles.

    Synthesis, IR building and pattern expansion run at most once per
    case regardless of how many oracles consume them; the process-wide
    compile cache already dedupes the ``exec`` cost across cases.
    """

    def __init__(self, case: FuzzCase):
        self.case = case
        self.spec = case.spec
        self.keys: Tuple[bytes, ...] = case.keys
        self._regex: Optional[str] = None
        self._pattern: Optional[KeyPattern] = None
        self._synthesized: Dict[HashFamily, SynthesizedHash] = {}
        self._ir: Dict[HashFamily, IRFunction] = {}

    @property
    def regex(self) -> str:
        if self._regex is None:
            self._regex = self.spec.regex()
        return self._regex

    @property
    def pattern(self) -> KeyPattern:
        if self._pattern is None:
            self._pattern = pattern_from_regex(self.regex)
        return self._pattern

    @property
    def synthesizable(self) -> bool:
        """Whether the default pipeline accepts this format at all."""
        return self.pattern.body_length >= 8

    def synthesized(self, family: HashFamily) -> SynthesizedHash:
        cached = self._synthesized.get(family)
        if cached is None:
            cached = synthesize(self.pattern, family)
            self._synthesized[family] = cached
        return cached

    def ir(self, family: HashFamily) -> IRFunction:
        cached = self._ir.get(family)
        if cached is None:
            synthesized = self.synthesized(family)
            cached = optimize(
                build_ir(synthesized.plan, name=synthesized.name)
            )
            self._ir[family] = cached
        return cached


@dataclass(frozen=True)
class Oracle:
    """A named invariant check over a :class:`CaseContext`."""

    name: str
    group: str
    check: Callable[[CaseContext], Optional[str]]
    description: str

    def run(self, ctx: CaseContext) -> Optional[str]:
        """None on success/skip, a human-readable message on failure."""
        return self.check(ctx)


ORACLES: Dict[str, Oracle] = {}


def _oracle(name: str, group: str):
    def decorate(fn: Callable[[CaseContext], Optional[str]]):
        ORACLES[name] = Oracle(
            name=name,
            group=group,
            check=fn,
            description=(fn.__doc__ or "").strip().splitlines()[0],
        )
        return fn

    return decorate


def all_oracles() -> List[Oracle]:
    """Every registered oracle, in registration order."""
    return list(ORACLES.values())


def resolve_oracles(names: Optional[Sequence[str]]) -> List[Oracle]:
    """Map oracle names to oracles; ``None`` selects all.

    Raises:
        KeyError: for an unknown oracle name.
    """
    if names is None:
        return all_oracles()
    selected = []
    for name in names:
        if name not in ORACLES:
            raise KeyError(
                f"unknown oracle {name!r}; known: {', '.join(ORACLES)}"
            )
        selected.append(ORACLES[name])
    return selected


# -- differential oracles ----------------------------------------------------


@_oracle("python-vs-interp", GROUP_DIFFERENTIAL)
def check_python_vs_interp(ctx: CaseContext) -> Optional[str]:
    """Compiled Python backend agrees with the IR interpreter, all families."""
    if not ctx.synthesizable:
        return None
    for family in HashFamily:
        synthesized = ctx.synthesized(family)
        func = ctx.ir(family)
        for key in ctx.keys:
            expected = interpret(func, key)
            actual = synthesized(key)
            if actual != expected:
                return (
                    f"{family.value}: compiled {actual:#x} != "
                    f"interpreted {expected:#x} for key {key!r}"
                )
    return None


@_oracle("batch-vs-scalar", GROUP_DIFFERENTIAL)
def check_batch_vs_scalar(ctx: CaseContext) -> Optional[str]:
    """hash_many agrees with the scalar callable, vector and loop paths."""
    if not ctx.synthesizable:
        return None
    keys = list(ctx.keys)
    for family in HashFamily:
        synthesized = ctx.synthesized(family)
        scalar = [synthesized(key) for key in keys]
        batched = synthesized.hash_many(keys)
        if batched != scalar:
            index = next(
                i for i, (a, b) in enumerate(zip(batched, scalar)) if a != b
            )
            return (
                f"{family.value}: hash_many[{index}] = {batched[index]:#x} "
                f"!= scalar {scalar[index]:#x} for key {keys[index]!r}"
            )
        small = keys[:_SMALL_BATCH]
        if synthesized.hash_many(small) != scalar[: len(small)]:
            return f"{family.value}: small-batch loop path diverges"
    return None


@_oracle("infer-engines", GROUP_DIFFERENTIAL)
def check_infer_engines(ctx: CaseContext) -> Optional[str]:
    """All inference engines produce the reference join's pattern."""
    if not ctx.keys:
        return None
    keys = list(ctx.keys)
    reference = infer_pattern(keys, engine="reference")
    engines = ["bigint"]
    if numpy_available() and len({len(key) for key in keys}) == 1:
        # The numpy engine only accepts equal-length key batches (by
        # contract); ragged batches exercise the bigint engine alone.
        engines.append("numpy")
    for engine in engines:
        result = infer_pattern(keys, engine=engine)
        if result != reference:
            return (
                f"engine {engine} inferred {render_regex(result)!r}, "
                f"reference says {render_regex(reference)!r}"
            )
    return None


@_oracle("serialize-roundtrip", GROUP_DIFFERENTIAL)
def check_serialize_roundtrip(ctx: CaseContext) -> Optional[str]:
    """serialize -> deserialize -> re-execute matches plan and interpreter."""
    if not ctx.synthesizable:
        return None
    for family in HashFamily:
        plan = ctx.synthesized(family).plan
        rebuilt_plan = loads(dumps(plan))
        if rebuilt_plan != plan:
            return f"{family.value}: plan round-trip not equal"
        rebuilt = compile_serialized(
            dumps(plan), name=f"fuzz_{family.value}_roundtrip"
        )
        func = ctx.ir(family)
        for key in ctx.keys:
            expected = interpret(func, key)
            actual = rebuilt(key)
            if actual != expected:
                return (
                    f"{family.value}: deserialized function {actual:#x} != "
                    f"interpreted {expected:#x} for key {key!r}"
                )
    return None


@_oracle("regex-roundtrip", GROUP_DIFFERENTIAL)
def check_regex_roundtrip(ctx: CaseContext) -> Optional[str]:
    """pattern -> render -> parse -> expand reproduces the same pattern."""
    pattern = ctx.pattern
    for key in ctx.keys:
        if not pattern.matches(key):
            return f"expanded pattern rejects conforming key {key!r}"
    rendered = render_regex(pattern)
    reparsed = pattern_from_regex(rendered)
    if reparsed != pattern:
        return (
            f"render/parse round trip changed the pattern: "
            f"{rendered!r} re-expanded differently"
        )
    if render_regex(reparsed) != rendered:
        return f"rendering is not a fixed point for {rendered!r}"
    return None


@_oracle("stdlib-re", GROUP_DIFFERENTIAL)
def check_stdlib_re(ctx: CaseContext) -> Optional[str]:
    """Pattern.matches agrees with Python's re on the rendered regex."""
    pattern = ctx.pattern
    if pattern.body_length == 0:
        return None
    rendered = stdlib_re.compile(
        render_regex(pattern), stdlib_re.DOTALL
    )
    rng = random.Random(0xF0221)
    probes: List[bytes] = list(ctx.keys)
    probes.extend(sample_conforming_keys(pattern, 8, rng=rng))
    # Perturbed probes: flip one byte, extend, truncate.
    for key in list(probes[:8]):
        if key:
            mutated = bytearray(key)
            index = rng.randrange(len(mutated))
            mutated[index] ^= 1 << rng.randrange(8)
            probes.append(bytes(mutated))
        probes.append(key + b"\x00")
        probes.append(key[:-1])
    for probe in probes:
        ours = pattern.matches(probe)
        theirs = rendered.fullmatch(probe.decode("latin-1")) is not None
        if ours != theirs:
            return (
                f"pattern.matches={ours} but re.fullmatch={theirs} for "
                f"{probe!r} under {rendered.pattern!r}"
            )
    return None


@_oracle("cpp-emit", GROUP_DIFFERENTIAL)
def check_cpp_emit(ctx: CaseContext) -> Optional[str]:
    """The C++ backend emits deterministic, well-formed source."""
    if not ctx.synthesizable:
        return None
    for family in HashFamily:
        synthesized = ctx.synthesized(family)
        for target in ("x86", "aarch64"):
            if (
                target == "aarch64"
                and synthesized.plan.family is HashFamily.PEXT
            ):
                continue  # No aarch64 pext; x86-only by design (§4.4).
            source = synthesized.cpp_source(target)
            if not source or "uint64_t" not in source:
                return f"{family.value}/{target}: implausible C++ output"
            if synthesized.cpp_source(target) != source:
                return f"{family.value}/{target}: emission not deterministic"
    return None


_NATIVE_SKIP_REASON: Optional[str] = None
"""Why cpp-native-vs-interp is skipping, recorded once per process."""


@_oracle("cpp-native-vs-interp", GROUP_DIFFERENTIAL)
def check_cpp_native_vs_interp(ctx: CaseContext) -> Optional[str]:
    """JIT-compiled native entry points agree with the IR interpreter."""
    global _NATIVE_SKIP_REASON
    if not ctx.synthesizable:
        return None
    from repro.codegen.native import detect_toolchain
    from repro.errors import NativeUnavailableError

    try:
        detect_toolchain()
    except NativeUnavailableError as exc:
        # No usable compiler on this host: skip, but leave a visible
        # trail (counter + module-level reason) so a run of all-skips
        # is distinguishable from a run of all-passes.
        if _NATIVE_SKIP_REASON is None:
            _NATIVE_SKIP_REASON = str(exc)
        from repro.obs.metrics import get_registry

        get_registry().counter("fuzz.native_skips").inc()
        return None
    keys = list(ctx.keys)
    for family in HashFamily:
        synthesized = ctx.synthesized(family)
        module = synthesized.native_module
        if module is None:
            # Toolchain exists but this plan would not compile (e.g. a
            # feature probe failed); the degradation path is exercised
            # elsewhere — a differential skip is not evidence.
            continue
        func = ctx.ir(family)
        expected = [interpret(func, key) for key in keys]
        for key, want in zip(keys, expected):
            got = module(key)
            if got != want:
                return (
                    f"{family.value}: native scalar {got:#x} != "
                    f"interpreted {want:#x} for key {key!r}"
                )
        batched = module.hash_many(keys)
        if batched != expected:
            index = next(
                i
                for i, (a, b) in enumerate(zip(batched, expected))
                if a != b
            )
            return (
                f"{family.value}: native hash_many[{index}] = "
                f"{batched[index]:#x} != interpreted "
                f"{expected[index]:#x} for key {keys[index]!r}"
            )
    return None


# -- metamorphic oracles -----------------------------------------------------


@_oracle("join-permutation", GROUP_METAMORPHIC)
def check_join_permutation(ctx: CaseContext) -> Optional[str]:
    """The quad join is order-independent (commutativity)."""
    if not ctx.keys:
        return None
    keys = list(ctx.keys)
    baseline = infer_pattern(keys)
    if infer_pattern(list(reversed(keys))) != baseline:
        return "join(reversed(keys)) differs from join(keys)"
    shuffled = list(keys)
    random.Random(0x5EED5).shuffle(shuffled)
    if infer_pattern(shuffled) != baseline:
        return "join(shuffled(keys)) differs from join(keys)"
    return None


@_oracle("join-merge", GROUP_METAMORPHIC)
def check_join_merge(ctx: CaseContext) -> Optional[str]:
    """Chunked accumulator merges equal the monolithic join (associativity)."""
    if not ctx.keys:
        return None
    keys = list(ctx.keys)
    baseline = infer_pattern(keys)
    third = max(1, len(keys) // 3)
    chunks = [keys[:third], keys[third : 2 * third], keys[2 * third :]]
    chunks = [chunk for chunk in chunks if chunk]
    accumulators = []
    for chunk in chunks:
        accumulator = PatternAccumulator()
        accumulator.update(chunk)
        accumulators.append(accumulator)
    forward = PatternAccumulator()
    for accumulator in accumulators:
        forward.merge(accumulator)
    if forward.finish() != baseline:
        return "left-to-right accumulator merge differs from whole join"
    backward = PatternAccumulator()
    for accumulator in reversed(accumulators):
        backward.merge(accumulator)
    if backward.finish() != baseline:
        return "right-to-left accumulator merge differs from whole join"
    return None


@_oracle("join-idempotent", GROUP_METAMORPHIC)
def check_join_idempotent(ctx: CaseContext) -> Optional[str]:
    """Joining the same evidence twice changes nothing (idempotence)."""
    if not ctx.keys:
        return None
    keys = list(ctx.keys)
    baseline = infer_pattern(keys)
    if infer_pattern(keys + keys) != baseline:
        return "join(keys + keys) differs from join(keys)"
    if infer_pattern(keys + [keys[0]]) != baseline:
        return "re-joining an already-seen key changed the pattern"
    return None


@_oracle("join-monotone", GROUP_METAMORPHIC)
def check_join_monotone(ctx: CaseContext) -> Optional[str]:
    """Extra evidence only widens a pattern, never narrows it."""
    if not ctx.keys:
        return None
    keys = list(ctx.keys)
    baseline = infer_pattern(keys)
    if baseline.body_length == 0:
        return None  # Nothing to sample from an all-tail pattern.
    rng = random.Random(0xA11CE)
    extras = sample_conforming_keys(baseline, 4, rng=rng)
    widened = infer_pattern(keys + extras)
    for index, (old, new) in enumerate(
        zip(baseline.quads, widened.quads)
    ):
        if not leq(old, new):
            return (
                f"quad {index} narrowed from {old!r} to {new!r} after "
                f"joining conforming evidence"
            )
    if widened.min_length > baseline.min_length:
        return "min_length grew after joining conforming evidence"
    return None


@_oracle("pext-invariants", GROUP_METAMORPHIC)
def check_pext_invariants(ctx: CaseContext) -> Optional[str]:
    """Pext masks cover each varying bit exactly once; bijections hold."""
    if not ctx.synthesizable:
        return None
    pattern = ctx.pattern
    synthesized = ctx.synthesized(HashFamily.PEXT)
    plan = synthesized.plan
    if plan.family is not HashFamily.PEXT:
        return None  # Fully-constant formats fall back to OffXor by design.
    if not pattern.is_fixed_length:
        return None  # Tail bytes are folded outside the masks.
    total_mask_bits = sum(
        popcount(load.mask) for load in plan.loads if load.mask is not None
    )
    variable_bits = pattern.variable_bit_count()
    if total_mask_bits != variable_bits:
        return (
            f"masks extract {total_mask_bits} bits but the format has "
            f"{variable_bits} varying bits"
        )
    for load in plan.loads:
        if load.mask is None:
            return f"pext load at {load.offset} has no mask"
        const_mask, _ = pattern.word_const_mask(load.offset, load.width)
        if load.mask & const_mask:
            return (
                f"mask at offset {load.offset} selects constant bits: "
                f"{load.mask & const_mask:#x}"
            )
    if plan.bijective:
        if variable_bits > 64:
            return f"bijective plan with {variable_bits} > 64 varying bits"
        values = {}
        for key in ctx.keys:
            value = synthesized(key)
            if value in values and values[value] != key:
                return (
                    f"bijection collided: {values[value]!r} and {key!r} "
                    f"both hash to {value:#x}"
                )
            values[value] = key
    return None


@_oracle("dispatcher", GROUP_METAMORPHIC)
def check_dispatcher(ctx: CaseContext) -> Optional[str]:
    """Dispatcher routing is deterministic and equals direct hashing."""
    if not ctx.synthesizable:
        return None
    if not ctx.keys:
        return None
    synthesized = ctx.synthesized(HashFamily.PEXT)
    dispatcher = FormatDispatcher()
    dispatcher.register(synthesized)
    first_key = ctx.keys[0]
    if dispatcher.route(first_key) is not dispatcher.route(first_key):
        return "routing the same key twice chose different callables"
    for key in ctx.keys:
        if dispatcher(key) != synthesized(key):
            return f"dispatched hash differs from direct hash for {key!r}"
    keys = list(ctx.keys)
    if dispatcher.hash_many(keys) != [synthesized(key) for key in keys]:
        return "dispatcher.hash_many misaligned with per-key routing"
    if ctx.pattern.is_fixed_length:
        stranger = b"\x00" * (ctx.pattern.body_length + 1)
        if dispatcher(stranger) != stl_hash_bytes(stranger):
            return "unrecognized key did not take the fallback hash"
    return None


@_oracle("container", GROUP_METAMORPHIC)
def check_container(ctx: CaseContext) -> Optional[str]:
    """UnorderedMap stays coherent under the synthesized hash."""
    if not ctx.synthesizable:
        return None
    if not ctx.keys:
        return None
    synthesized = ctx.synthesized(HashFamily.PEXT)
    table = UnorderedMap(synthesized.function)
    expected: Dict[bytes, int] = {}
    for index, key in enumerate(ctx.keys):
        table.assign(key, index)
        expected[key] = index
    if len(table) != len(expected):
        return (
            f"table holds {len(table)} entries, expected {len(expected)} "
            f"distinct keys"
        )
    for key, value in expected.items():
        found = table.find(key)
        if found != value:
            return f"find({key!r}) = {found!r}, expected {value}"
    bulk = UnorderedMap(synthesized.function)
    bulk.update(expected.items())
    for key, value in expected.items():
        if bulk.find(key) != value:
            return f"bulk-built table disagrees on {key!r}"
    victim = ctx.keys[0]
    if table.erase(victim) != 1 or victim in table:
        return f"erase({victim!r}) did not remove the key"
    return None


@_oracle("verify-bijective", GROUP_DIFFERENTIAL)
def check_verify_bijective(ctx: CaseContext) -> Optional[str]:
    """The static bijectivity prover agrees with concrete execution.

    Two directions: a plan *claiming* bijectivity that the prover
    refutes is a pipeline bug (either the planner over-claims or the
    prover is broken — both are findings); and on every plan the prover
    *certifies*, sampled conforming keys must actually hash without
    collision, checking the prover's soundness against the real
    compiled function.
    """
    if not ctx.synthesizable:
        return None
    for family in HashFamily:
        plan = build_plan(ctx.pattern, family)
        result = prove_bijectivity(plan, ctx.pattern)
        if result.refutes_claim:
            return (
                f"{family.value} plan claims bijectivity but the prover "
                f"refutes it: {'; '.join(result.reasons)}"
            )
        if not result.certified:
            continue
        keys = list(dict.fromkeys(ctx.keys))
        keys.extend(sample_conforming_keys(ctx.pattern, 64, seed=7))
        synthesized = ctx.synthesized(family)
        seen: Dict[int, bytes] = {}
        for key in dict.fromkeys(keys):
            value = synthesized(key)
            other = seen.get(value)
            if other is not None and other != key:
                return (
                    f"prover certified the {family.value} plan bijective "
                    f"but {other!r} and {key!r} both hash to {value:#x}"
                )
            seen[value] = key
    return None


@_oracle("perfect-no-collision", GROUP_DIFFERENTIAL)
def check_perfect_no_collision(ctx: CaseContext) -> Optional[str]:
    """A certified-perfect plan never collides on its closed key set.

    Runs the perfect-hash synthesizer on the case's key set.  An honest
    *refusal* (``PerfectSearchError``) is not a finding — the tier is
    allowed to give up — but any plan it *does* return must carry a
    certified :class:`~repro.perfect.PerfectCertificate`, hash the keys
    without a single collision, recognise the same set in any order, and
    reject mutated or extended key sets (the certificate must not cover
    an open set).
    """
    from repro.errors import PerfectSearchError
    from repro.perfect import synthesize_perfect

    if not ctx.synthesizable:
        return None
    keys = list(dict.fromkeys(ctx.keys))
    if len(keys) < 2:
        return None
    try:
        perfect = synthesize_perfect(keys, format=ctx.pattern)
    except PerfectSearchError:
        return None  # Honest refusal; the tier never over-claims.
    certificate = perfect.certificate
    if certificate is None or not certificate.certified:
        return (
            "synthesize_perfect returned a plan without a certified "
            "PerfectCertificate instead of refusing"
        )
    seen: Dict[int, bytes] = {}
    for key in keys:
        value = perfect(key)
        other = seen.get(value)
        if other is not None:
            return (
                f"certified-perfect hash collides: {other!r} and {key!r} "
                f"both map to {value:#x}"
            )
        seen[value] = key
    shuffled = list(keys)
    random.Random(0xC0FFEE).shuffle(shuffled)
    if not certificate.covers(shuffled):
        return "certificate is order-sensitive: permuted key set not covered"
    mutated = list(keys)
    mutated[0] = bytes([mutated[0][0] ^ 0xFF]) + mutated[0][1:]
    if len(set(mutated)) == len(keys) and certificate.covers(mutated):
        return "certificate covers a mutated key set (open-set over-claim)"
    if certificate.covers(keys + [keys[0] + b"\x00"]):
        return "certificate covers an extended key set (open-set over-claim)"
    return None


@_oracle("dataflow-sound", GROUP_METAMORPHIC)
def check_dataflow_sound(ctx: CaseContext) -> Optional[str]:
    """Concrete execution never escapes the dataflow analyzer's facts.

    For every family: abstractly interpret the un-optimized IR under
    the case's format, then run the concrete interpreter on conforming
    keys and require every register's concrete value to be *admitted*
    by the reduced product — inside the derived interval, no
    claimed-zero bit set, no claimed-one bit clear.  A violation means
    a transfer function or the product refinement is unsound, which
    would silently poison every analysis-driven rewrite.  Separately,
    ``optimize()`` (whose range rewrites the analyzer justifies) must
    agree with the original IR on conforming *and* mutated
    non-conforming keys, because the rewrites claim structural facts
    that hold for arbitrary bytes.
    """
    from repro.codegen.interp import interpret_registers
    from repro.verify.dataflow import analyze_dataflow

    if not ctx.synthesizable:
        return None
    for family in HashFamily:
        synthesized = ctx.synthesized(family)
        func = build_ir(synthesized.plan, name=synthesized.name)
        analysis = analyze_dataflow(func, ctx.pattern)
        conforming = [key for key in ctx.keys if ctx.pattern.matches(key)]
        for key in conforming:
            _, registers = interpret_registers(func, key)
            for register, concrete in registers.items():
                product = analysis.values.get(register)
                if product is None:
                    continue
                if not product.admits(concrete):
                    return (
                        f"{family.value}: register {register} = "
                        f"{concrete:#x} escapes the derived product "
                        f"(range [{product.range.lo:#x}, "
                        f"{product.range.hi:#x}], zeros "
                        f"{product.bits.zeros:#x}, ones "
                        f"{product.bits.ones:#x}) for key {key!r}"
                    )
        optimized = optimize(func)
        mutated = [
            bytes([key[0] ^ 0xFF]) + key[1:] for key in conforming[:8]
        ]
        for key in conforming + mutated:
            expected = interpret(func, key)
            actual = interpret(optimized, key)
            if actual != expected:
                return (
                    f"{family.value}: optimize() changed the hash for "
                    f"key {key!r}: {actual:#x} != {expected:#x}"
                )
    return None

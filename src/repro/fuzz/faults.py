"""Deliberate fault injection — the fuzzer's own smoke test.

A fuzzer that has never caught a bug is unfalsifiable.  This module
plants known bugs in the pipeline so the test suite can assert the
whole find→shrink→persist machinery actually fires: inject a fault, run
the harness, and demand a minimized reproducer comes out the other end.

Faults are context managers that monkey-patch one implementation and
restore it on exit, so they compose with any harness invocation and
never leak into other tests.  Each fault is *conditional* (keyed off a
property of the input) rather than unconditional, because a bug that
fires on every key shrinks trivially — the conditional form exercises
the shrinker's actual search.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.codegen import interp as interp_module
from repro.core.synthesis import SynthesizedHash

FAULT_KINDS = ("interp-bitflip", "batch-flip")


@contextmanager
def injected_fault(kind: str) -> Iterator[None]:
    """Plant one known bug for the duration of the block.

    - ``interp-bitflip`` — the IR interpreter flips the low bit of its
      result for keys whose last byte is odd, so every differential
      oracle that trusts the interpreter sees a divergence.
    - ``batch-flip`` — ``SynthesizedHash.hash_many`` perturbs the final
      element of any batch larger than one, the classic off-by-one that
      batch-vs-scalar oracles exist to catch.

    Raises:
        ValueError: for an unknown fault kind.
    """
    if kind == "interp-bitflip":
        # ``interpret`` looks _interpret up at call time, so patching the
        # module attribute poisons every oracle that consults it; the
        # compile cache is unaffected because compiled callables never
        # route through the interpreter.
        original = interp_module._interpret

        def flipped(func, key):
            result = original(func, key)
            if key and key[-1] & 1:
                result ^= 1
            return result

        interp_module._interpret = flipped
        try:
            yield
        finally:
            interp_module._interpret = original
    elif kind == "batch-flip":
        original_many = SynthesizedHash.hash_many

        def corrupted(self, keys):
            values = list(original_many(self, keys))
            if len(values) > 1:
                values[-1] ^= 0x2
            return values

        SynthesizedHash.hash_many = corrupted
        try:
            yield
        finally:
            SynthesizedHash.hash_many = original_many
    else:
        raise ValueError(
            f"unknown fault kind {kind!r}; known: {', '.join(FAULT_KINDS)}"
        )

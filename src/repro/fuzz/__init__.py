"""``repro.fuzz``: differential fuzzing for the synthesis pipeline.

The pipeline has many independently-implemented paths that must agree
bit for bit — compiled Python vs the IR interpreter, batch vs scalar,
three inference engines, serialization round trips — plus algebraic
laws the paper proves (the quad join is a bounded semilattice).  This
package turns those facts into a standing correctness engine:

- :mod:`repro.fuzz.generators` — seeded format/key samplers stratified
  along the paper's length/const/range constraint axes, with one
  mutation operator per axis;
- :mod:`repro.fuzz.oracles` — differential and metamorphic invariant
  checks over one (format, key-set) case;
- :mod:`repro.fuzz.harness` — the seeded, time-budgeted campaign loop;
- :mod:`repro.fuzz.shrink` — greedy minimization of failing cases;
- :mod:`repro.fuzz.corpus` — JSON reproducers under ``tests/corpora/``
  with deterministic replay;
- :mod:`repro.fuzz.faults` — deliberate bug injection, so the test
  suite can prove the fuzzer catches what it claims to catch.

Entry points: ``sepe fuzz`` on the command line, or::

    from repro.fuzz import FuzzConfig, run_fuzz
    report = run_fuzz(FuzzConfig(seed=0, budget_seconds=30))
    assert report.ok, report.to_dict()
"""

from __future__ import annotations

from repro.fuzz.corpus import (
    case_from_dict,
    case_to_dict,
    corpus_files,
    load_reproducer,
    replay_case,
    replay_corpus,
    save_reproducer,
)
from repro.fuzz.faults import FAULT_KINDS, injected_fault
from repro.fuzz.generators import (
    ALPHABETS,
    MUTATORS,
    UNBOUNDED,
    FormatSpec,
    Piece,
    conforms,
    mutate_format,
    sample_format,
    sample_keys,
)
from repro.fuzz.harness import (
    FuzzConfig,
    FuzzFailure,
    FuzzReport,
    run_fuzz,
)
from repro.fuzz.oracles import (
    GROUP_DIFFERENTIAL,
    GROUP_METAMORPHIC,
    ORACLES,
    CaseContext,
    FuzzCase,
    Oracle,
    all_oracles,
    resolve_oracles,
)
from repro.fuzz.shrink import shrink_case

__all__ = [
    "ALPHABETS",
    "CaseContext",
    "FAULT_KINDS",
    "FormatSpec",
    "FuzzCase",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "GROUP_DIFFERENTIAL",
    "GROUP_METAMORPHIC",
    "MUTATORS",
    "ORACLES",
    "Oracle",
    "Piece",
    "UNBOUNDED",
    "all_oracles",
    "case_from_dict",
    "case_to_dict",
    "conforms",
    "corpus_files",
    "injected_fault",
    "load_reproducer",
    "mutate_format",
    "replay_case",
    "replay_corpus",
    "resolve_oracles",
    "run_fuzz",
    "sample_format",
    "sample_keys",
    "save_reproducer",
    "shrink_case",
]

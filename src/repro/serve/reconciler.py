"""The background reconciler: samples in, verified hot swaps out.

Every reconcile pass drains the per-shard sample lists, folds them into
central per-route :class:`PatternAccumulator`s (the monoid merge — the
shard partition is invisible to the result), and runs
:func:`~repro.serve.drift.detect_drift` per route:

1. **No drift** — the accumulators keep growing; nothing else happens.
2. **Widened byte class** — the route's own samples joined to a wider
   pattern.  The merged pattern (plan ⊔ observation) is re-synthesized
   with ``verify="strict"``; on success a fresh
   :class:`~repro.serve.routes.RouteState` (generation + 1, callables
   pre-compiled, native tier JIT-ed *in this thread*) is installed via
   :meth:`HashService.swap_route` — one reference store per shard,
   traffic never pauses.
3. **New length** — drifted keys missed every route and landed in the
   *unrouted* accumulator.  The reconciler attributes them to the
   route whose constant-byte landmarks they preserve
   (:func:`~repro.serve.drift.route_affinity` ≥ the threshold), merges
   and swaps as above.  Samples no route claims stay pending (counted,
   never dropped silently) until either a claimant drifts into range
   or an operator registers the new format.

Failure is a first-class outcome: if strict verification refutes the
re-synthesized plan (or synthesis itself fails, e.g. the drifted body
fell below one machine word), the swap is abandoned, the old plan
keeps serving — correct for all still-conforming keys — and the
observed state for that route is reset so one poisoned sample cannot
wedge the loop re-attempting the same doomed swap.

Swap latency (resynthesize + verify + JIT + install) is measured into
``serve.swap_ms``; drift causes are counted per kind.  All of it runs
in the reconciler thread, so the measured latency is *convergence*
latency, not traffic stall — the replay benchmark asserts traffic
throughput holds through a swap.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.fast_infer import PatternAccumulator
from repro.core.pattern import KeyPattern
from repro.core.synthesis import synthesize
from repro.errors import SynthesisError, VerificationError
from repro.obs.trace import span
from repro.serve.drift import (
    DriftReport,
    copy_accumulator,
    detect_drift,
    route_affinity,
)
from repro.serve.routes import RouteState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.service import HashService

SWAP_VERIFY_MODE = "strict"
"""Every hot swap is gated by strict static verification — a drifted
format must never swap in a refuted plan.  Not configurable on
purpose."""


@dataclass(frozen=True)
class SwapEvent:
    """One verified hot swap, as recorded for the benchmark report."""

    route_id: str
    label: str
    old_generation: int
    new_generation: int
    reasons: Tuple[str, ...]
    observed_keys: int
    swap_ms: float
    regex_before: str
    regex_after: str
    verified: bool = True
    unix_time: float = field(default=0.0, compare=False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "route_id": self.route_id,
            "label": self.label,
            "old_generation": self.old_generation,
            "new_generation": self.new_generation,
            "reasons": list(self.reasons),
            "observed_keys": self.observed_keys,
            "swap_ms": self.swap_ms,
            "regex_before": self.regex_before,
            "regex_after": self.regex_after,
            "verified": self.verified,
            "unix_time": self.unix_time,
        }


@dataclass(frozen=True)
class SwapFailure:
    """A drift that could not be resolved into a verified swap."""

    route_id: str
    reasons: Tuple[str, ...]
    error: str
    unix_time: float = field(default=0.0, compare=False)


class Reconciler:
    """Periodic drift detection and hot-swap resynthesis.

    Runs :meth:`reconcile_once` every ``interval`` seconds in a daemon
    thread; the method is also public so tests and quiesce points can
    drive it deterministically.

    Args:
        service: the :class:`HashService` to reconcile.
        interval: seconds between passes.
        drift_min_keys: minimum sampled keys before a route (or the
            unrouted pool) is judged for drift.
        affinity_threshold: minimum landmark agreement for attributing
            unrouted samples to a route.
    """

    def __init__(
        self,
        service: "HashService",
        interval: float = 0.25,
        drift_min_keys: int = 64,
        affinity_threshold: float = 0.5,
    ):
        self.service = service
        self.interval = interval
        self.drift_min_keys = drift_min_keys
        self.affinity_threshold = affinity_threshold
        self.events: List[SwapEvent] = []
        self.failures: List[SwapFailure] = []
        self._observed: Dict[str, PatternAccumulator] = {}
        self._unrouted = PatternAccumulator()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._pass_lock = threading.Lock()
        registry = service.registry
        self._drift_counters = {
            "new_length": registry.counter("serve.drift.new_length"),
            "widened_byte_class": registry.counter(
                "serve.drift.widened_byte_class"
            ),
        }
        self._failure_counter = registry.counter("serve.swap_failures")
        self._error_counter = registry.counter("serve.reconcile_errors")
        self._pass_counter = registry.counter("serve.reconcile_passes")
        self._unrouted_gauge = registry.gauge("serve.unrouted_sampled")

    # -- thread lifecycle ----------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="sepe-reconciler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join()
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.reconcile_once()
            except Exception:  # pragma: no cover - resilience backstop
                # The reconciler must outlive any single bad pass; the
                # counter is the alarm, the next pass the retry.
                self._error_counter.inc()

    # -- one pass -------------------------------------------------------

    def reconcile_once(self) -> List[SwapEvent]:
        """Drain, merge, detect, swap; returns this pass's swap events.

        Serialized with a lock so a test driving it directly cannot
        race the background thread.
        """
        with self._pass_lock, span("serve.reconcile"):
            self._pass_counter.inc()
            self._drain_shards()
            events: List[SwapEvent] = []
            for route in self.service.table.routes:
                observed = self._observed.get(route.route_id)
                if observed is None:
                    continue
                report = detect_drift(
                    route.pattern, observed, min_keys=self.drift_min_keys
                )
                if report.drifted:
                    event = self._attempt_swap(route, report)
                    if event is not None:
                        events.append(event)
            unrouted_event = self._reconcile_unrouted()
            if unrouted_event is not None:
                events.append(unrouted_event)
            self._unrouted_gauge.set(self._unrouted.count)
            return events

    def _drain_shards(self) -> None:
        for shard in self.service.shards:
            samples, unrouted = shard.drain_samples()
            for route_id, keys in samples.items():
                accumulator = self._observed.get(route_id)
                if accumulator is None:
                    accumulator = self._observed[route_id] = (
                        PatternAccumulator()
                    )
                accumulator.update(keys)
            if unrouted:
                self._unrouted.update(unrouted)

    def _reconcile_unrouted(self) -> Optional[SwapEvent]:
        """Attribute fallback-sampled keys to the best-matching route.

        Keys that miss every route are either a drifted variant of a
        registered format (typically a *length* drift — new lengths
        cannot hit the old route, so their samples can only ever show
        up here) or a genuinely new format.  Landmark affinity
        separates the two: above the threshold the pool merges into the
        winning route and swaps; otherwise it stays pending for an
        operator.
        """
        pool = self._unrouted
        if pool.count < self.drift_min_keys:
            return None
        best: Optional[RouteState] = None
        best_score = 0.0
        for route in self.service.table.routes:
            score = route_affinity(route.pattern, pool)
            if score > best_score:
                best, best_score = route, score
        if best is None or best_score < self.affinity_threshold:
            return None
        merged = copy_accumulator(pool)
        observed = self._observed.get(best.route_id)
        if observed is not None:
            merged.merge(copy_accumulator(observed))
        report = detect_drift(best.pattern, merged, min_keys=1)
        if not report.drifted:  # pool already inside the pattern
            self._unrouted = PatternAccumulator()
            return None
        event = self._attempt_swap(best, report)
        if event is not None:
            self._unrouted = PatternAccumulator()
        return event

    # -- the swap itself ------------------------------------------------

    def _attempt_swap(
        self,
        route: RouteState,
        report: DriftReport,
        extra_count: int = 0,
    ) -> Optional[SwapEvent]:
        merged_pattern = report.merged_pattern
        assert merged_pattern is not None
        started = time.perf_counter()
        with span(
            "serve.hot_swap",
            route=route.route_id,
            reasons=",".join(report.reasons),
        ):
            try:
                new_state = self._build_successor(route, merged_pattern)
            except (SynthesisError, VerificationError) as exc:
                self._failure_counter.inc()
                self.failures.append(
                    SwapFailure(
                        route.route_id,
                        report.reasons,
                        f"{type(exc).__name__}: {exc}",
                        unix_time=time.time(),
                    )
                )
                # Reset so the same poisoned joined state does not
                # re-attempt (and re-fail) the identical swap forever.
                self._observed.pop(route.route_id, None)
                return None
            self.service.swap_route(new_state)
        swap_ms = (time.perf_counter() - started) * 1e3
        self.service.observe_swap_latency(swap_ms)
        for reason in report.reasons:
            counter = self._drift_counters.get(reason)
            if counter is not None:
                counter.inc()
        self._observed.pop(route.route_id, None)
        event = SwapEvent(
            route_id=route.route_id,
            label=route.label,
            old_generation=route.generation,
            new_generation=new_state.generation,
            reasons=report.reasons,
            observed_keys=report.observed_count + extra_count,
            swap_ms=swap_ms,
            regex_before=route.synthesized.plan.pattern_regex or "",
            regex_after=new_state.synthesized.plan.pattern_regex or "",
            unix_time=time.time(),
        )
        self.events.append(event)
        return event

    def _build_successor(
        self, route: RouteState, merged_pattern: KeyPattern
    ) -> RouteState:
        """Resynthesize under strict verification and pre-compile.

        Everything expensive — plan building, the static verifier, the
        batch lowering, the native JIT — happens here, in the
        reconciler thread, before a single traffic thread can observe
        the new state.
        """
        synthesized = synthesize(
            merged_pattern,
            family=route.family,
            name=route.synthesized.name,
            verify=SWAP_VERIFY_MODE,
        )
        return RouteState(
            route.route_id,
            synthesized,
            generation=route.generation + 1,
            prefer_native=self.service.prefer_native,
            label=route.label,
        )

    # -- introspection --------------------------------------------------

    def observed_count(self, route_id: str) -> int:
        accumulator = self._observed.get(route_id)
        return accumulator.count if accumulator is not None else 0

    @property
    def unrouted_count(self) -> int:
        return self._unrouted.count

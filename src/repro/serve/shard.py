"""One serving shard: a single-writer submission lane with batch flushes.

The scaling mechanism of the serve layer is *not* "spread lock
contention thinner" — on a contended CPython lock the barging
implementation keeps throughput surprisingly flat across shard counts.
What sharding actually buys is the right to **elide the lock**: a shard
with exactly one registered submitter thread is a single-writer lane,
so its pending buffers, counters and sample lists can be plain Python
objects touched without synchronization, and every key costs one dict
probe, one list append and one counter add until the buffer fills and
one batched call — the native ``hash_many_array`` when the route has it
— amortizes the per-key cost to tens of nanoseconds.

The contract, precisely:

- **Exclusive shard** (``shared=False``): exactly one thread may call
  the submission/hash methods.  The service enforces this by
  assignment; the shard itself runs lock-free.
- **Shared shard** (``shared=True``): any number of threads; every
  operation takes the shard mutex.  Correct on any Python
  implementation — no reliance on GIL atomicity for compound updates.
- **Promotion** (exclusive → shared, when a second thread is assigned)
  uses a busy-flag handshake: the owner brackets every unlocked
  operation with ``busy``; :meth:`make_shared` flips ``shared`` and
  spins until the in-flight operation (if any) drains.  After that,
  every thread — the old owner included — sees ``shared`` and locks.

Route-table swaps need no handshake at all: shards read ``self.table``
once per operation, and the service replaces the whole immutable
:class:`~repro.serve.routes.RouteTable` by reference.  Keys already
sitting in a pending buffer keep the :class:`RouteState` they resolved
under and are flushed through it — the stale plan serves until the
swap lands, never a torn mix of old offsets and new masks.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.serve.routes import RouteState, RouteTable

SinkCallable = Callable[[Optional[RouteState], List[bytes], Sequence], None]
"""Receives every flushed batch: ``(route, keys, values)``; ``route`` is
None for fallback traffic and ``values`` is a NumPy uint64 array when
the native array tier produced it, else a list of ints."""

DEFAULT_FLUSH_SIZE = 1024
"""Keys buffered per route before a batched flush; large enough to
amortize the Python→native boundary, small enough to bound latency."""

_NEVER_MASK = (1 << 62) - 1
"""Sampling mask that fires only every ~4.6e18 keys: effectively off."""


def sampling_mask(sample_every: int) -> int:
    """Round a sampling period up to a power of two, as an AND mask.

    ``position & mask == 0`` then holds for one key in ``mask + 1`` — a
    single AND on the hot path instead of a modulo.  The position is
    always a *per-route* ordinal (pending-buffer length on the
    streaming path, the route's cumulative count on the scalar path),
    never the shard-global tick: a global counter aliases against
    periodic traffic — a stream that strictly alternates two formats
    with a power-of-two period would sample only one of them — while a
    per-route ordinal samples every route at the configured rate
    regardless of interleaving.  ``0`` disables sampling.
    """
    if sample_every <= 0:
        return _NEVER_MASK
    period = 1
    while period < sample_every:
        period <<= 1
    return period - 1


class Shard:
    """A submission lane over a shared route-table snapshot.

    Not constructed directly in normal use — the
    :class:`~repro.serve.service.HashService` owns its shards, assigns
    submitter threads, and handles promotion.
    """

    def __init__(
        self,
        index: int,
        table: RouteTable,
        fallback: Callable[[bytes], int],
        *,
        flush_size: int = DEFAULT_FLUSH_SIZE,
        sample_every: int = 64,
        sink: Optional[SinkCallable] = None,
    ):
        self.index = index
        self.table = table
        # The length → route map, lifted out of the table so the hot
        # path pays one attribute load, not two.  The service stores
        # ``table`` and ``fast_map`` back to back on a swap; a reader
        # interleaving between the two stores sees one complete old
        # snapshot and one complete new one — both valid, and serving
        # one key through a just-replaced route is exactly the
        # stale-plan contract.
        self.fast_map = table.fast
        self.fallback = fallback
        self.flush_size = flush_size
        self.sample_mask = sampling_mask(sample_every)
        self.sink = sink
        self.lock = threading.Lock()
        self.shared = False
        self.busy = False
        # Hot-path state: plain objects, guarded by the single-writer
        # contract (exclusive) or by ``self.lock`` (shared).
        self.tick = 0
        self.hashed = 0
        self.fallback_count = 0
        self.sampled = 0
        self.pending: Dict[str, Tuple[RouteState, List[bytes]]] = {}
        self.fallback_pending: List[bytes] = []
        self.route_counts: Dict[str, int] = {}
        self.samples: Dict[str, List[bytes]] = {}
        self.unrouted_samples: List[bytes] = []

    # -- ownership ------------------------------------------------------

    def make_shared(self) -> None:
        """Promote to the locked discipline (second submitter arriving).

        Returns only after any in-flight unlocked operation has
        drained, so from the caller's perspective the shard is fully
        locked when this method returns.
        """
        if self.shared:
            return
        self.shared = True
        while self.busy:
            time.sleep(0)

    # -- streaming submission ------------------------------------------

    def submit(self, key: bytes) -> None:
        """Enqueue one key; hashes land at the sink in batched flushes."""
        if self.shared:
            with self.lock:
                self._submit(key)
            return
        self.busy = True
        if self.shared:  # promotion raced in between check and flag
            self.busy = False
            with self.lock:
                self._submit(key)
            return
        # Inlined mirror of _submit (keep in sync): the exclusive lane
        # is the throughput path, and the extra call frame per key is
        # measurable against a sub-microsecond budget.
        try:
            self.tick += 1
            route = self.fast_map.get(len(key))
            if route is None:
                self._submit_slow(key)
                return
            route_id = route.route_id
            entry = self.pending.get(route_id)
            if entry is None:
                entry = self.pending[route_id] = (route, [])
            buffer = entry[1]
            buffer.append(key)
            if not len(buffer) & self.sample_mask:
                samples = self.samples.get(route_id)
                if samples is None:
                    samples = self.samples[route_id] = []
                samples.append(key)
                self.sampled += 1
            if len(buffer) >= self.flush_size:
                self._flush_route(route_id, entry)
        finally:
            self.busy = False

    def _submit(self, key: bytes) -> None:
        self.tick += 1
        route = self.fast_map.get(len(key))
        if route is None:
            self._submit_slow(key)
            return
        route_id = route.route_id
        entry = self.pending.get(route_id)
        if entry is None:
            entry = self.pending[route_id] = (route, [])
        buffer = entry[1]
        buffer.append(key)
        if not len(buffer) & self.sample_mask:
            samples = self.samples.get(route_id)
            if samples is None:
                samples = self.samples[route_id] = []
            samples.append(key)
            self.sampled += 1
        if len(buffer) >= self.flush_size:
            self._flush_route(route_id, entry)

    def _submit_slow(self, key: bytes) -> None:
        """Contested-length and fallback submission (fast-map miss)."""
        route = self.table.resolve_checked(key)
        if route is None:
            buffer = self.fallback_pending
            buffer.append(key)
            if not len(buffer) & self.sample_mask:
                self.unrouted_samples.append(key)
                self.sampled += 1
            if len(buffer) >= self.flush_size:
                self._flush_fallback()
            return
        route_id = route.route_id
        entry = self.pending.get(route_id)
        if entry is None:
            entry = self.pending[route_id] = (route, [])
        buffer = entry[1]
        buffer.append(key)
        if not len(buffer) & self.sample_mask:
            samples = self.samples.get(route_id)
            if samples is None:
                samples = self.samples[route_id] = []
            samples.append(key)
            self.sampled += 1
        if len(buffer) >= self.flush_size:
            self._flush_route(route_id, entry)

    def _flush_route(
        self, route_id: str, entry: Tuple[RouteState, List[bytes]]
    ) -> None:
        del self.pending[route_id]
        route, keys = entry
        if route.batch_array is not None:
            values = route.batch_array(keys)
        else:
            values = route.batch(keys)
        count = len(keys)
        self.hashed += count
        self.route_counts[route_id] = (
            self.route_counts.get(route_id, 0) + count
        )
        sink = self.sink
        if sink is not None:
            sink(route, keys, values)

    def _flush_fallback(self) -> None:
        keys = self.fallback_pending
        self.fallback_pending = []
        fallback = self.fallback
        values = [fallback(key) for key in keys]
        count = len(keys)
        self.hashed += count
        self.fallback_count += count
        sink = self.sink
        if sink is not None:
            sink(None, keys, values)

    def flush(self) -> None:
        """Flush every pending buffer through its batch tier.

        Owner-thread calls follow the usual discipline.  Calling from a
        *different* thread while an exclusive owner is actively
        submitting is not supported (the service only force-flushes at
        quiesce); on shared shards any thread may flush.
        """
        if self.shared:
            with self.lock:
                self._flush_all()
            return
        self.busy = True
        if self.shared:
            self.busy = False
            with self.lock:
                self._flush_all()
            return
        try:
            self._flush_all()
        finally:
            self.busy = False

    def _flush_all(self) -> None:
        for route_id, entry in list(self.pending.items()):
            self._flush_route(route_id, entry)
        if self.fallback_pending:
            self._flush_fallback()

    # -- synchronous hashing -------------------------------------------

    def hash(self, key: bytes) -> int:
        """Hash one key now (scalar tier), bypassing the pending buffers."""
        if self.shared:
            with self.lock:
                return self._hash(key)
        self.busy = True
        if self.shared:
            self.busy = False
            with self.lock:
                return self._hash(key)
        try:
            return self._hash(key)
        finally:
            self.busy = False

    def _hash(self, key: bytes) -> int:
        self.tick += 1
        route = self.fast_map.get(len(key))
        if route is None:
            route = self.table.resolve_checked(key)
        self.hashed += 1
        if route is None:
            self.fallback_count += 1
            if not self.fallback_count & self.sample_mask:
                self.unrouted_samples.append(key)
                self.sampled += 1
            return self.fallback(key)
        route_id = route.route_id
        count = self.route_counts.get(route_id, 0) + 1
        self.route_counts[route_id] = count
        if not count & self.sample_mask:
            self.samples.setdefault(route_id, []).append(key)
            self.sampled += 1
        return route.scalar(key)

    def hash_many(self, keys: Sequence[bytes]) -> List[int]:
        """Hash a batch now, grouped by route, positionally aligned."""
        if self.shared:
            with self.lock:
                return self._hash_many(keys)
        self.busy = True
        if self.shared:
            self.busy = False
            with self.lock:
                return self._hash_many(keys)
        try:
            return self._hash_many(keys)
        finally:
            self.busy = False

    def _hash_many(self, keys: Sequence[bytes]) -> List[int]:
        out: List[int] = [0] * len(keys)
        self.tick += len(keys)
        self.hashed += len(keys)
        table = self.table
        fast_map = self.fast_map
        groups: Dict[str, Tuple[RouteState, List[int], List[bytes]]] = {}
        fallback_pairs: List[Tuple[int, bytes]] = []
        for index, key in enumerate(keys):
            route = fast_map.get(len(key))
            if route is None:
                route = table.resolve_checked(key)
                if route is None:
                    fallback_pairs.append((index, key))
                    continue
            group = groups.get(route.route_id)
            if group is None:
                groups[route.route_id] = (route, [index], [key])
            else:
                group[1].append(index)
                group[2].append(key)
        for route_id, (route, indices, grouped) in groups.items():
            self.route_counts[route_id] = (
                self.route_counts.get(route_id, 0) + len(indices)
            )
            values = route.batch(grouped)
            for index, value in zip(indices, values):
                out[index] = value
        if fallback_pairs:
            self.fallback_count += len(fallback_pairs)
            fallback = self.fallback
            for index, key in fallback_pairs:
                out[index] = fallback(key)
        return out

    def hash_batch_direct(
        self, route: RouteState, keys: List[bytes]
    ):
        """Hash a pre-resolved homogeneous batch via the array tier.

        The caller (the service's ``hash_many_array``) has already
        checked that every key has the route's length and that the
        route carries a native array entry point.
        """
        if self.shared:
            with self.lock:
                return self._hash_batch_direct(route, keys)
        self.busy = True
        if self.shared:
            self.busy = False
            with self.lock:
                return self._hash_batch_direct(route, keys)
        try:
            return self._hash_batch_direct(route, keys)
        finally:
            self.busy = False

    def _hash_batch_direct(self, route: RouteState, keys: List[bytes]):
        count = len(keys)
        self.tick += count
        self.hashed += count
        self.route_counts[route.route_id] = (
            self.route_counts.get(route.route_id, 0) + count
        )
        return route.batch_array(keys)

    # -- reconciler interface ------------------------------------------

    def drain_samples(
        self,
    ) -> Tuple[Dict[str, List[bytes]], List[bytes]]:
        """Detach and return the sample lists accumulated so far.

        Shared shards detach under the lock.  Exclusive shards detach
        by bare reference swap from the reconciler thread: the owner
        may concurrently append to a list the swap is about to drop, in
        which case that *sample* (not the key — the key was hashed
        normally) is lost.  Sampling is statistical by construction, so
        an occasionally dropped observation is an accepted cost of
        keeping the hot path lock-free; the monoid join is insensitive
        to duplicates and ordering either way.
        """
        if self.shared:
            with self.lock:
                return self._detach_samples()
        return self._detach_samples()

    def _detach_samples(
        self,
    ) -> Tuple[Dict[str, List[bytes]], List[bytes]]:
        samples, self.samples = self.samples, {}
        unrouted, self.unrouted_samples = self.unrouted_samples, []
        return samples, unrouted

    # -- introspection --------------------------------------------------

    def pending_count(self) -> int:
        return sum(
            len(entry[1]) for entry in self.pending.values()
        ) + len(self.fallback_pending)

    def snapshot(self) -> Dict[str, object]:
        """Advisory counters snapshot (may lag in-flight operations)."""
        return {
            "shard": self.index,
            "shared": self.shared,
            "submitted": self.tick,
            "hashed": self.hashed,
            "pending": self.pending_count(),
            "fallback": self.fallback_count,
            "sampled": self.sampled,
            "routes": dict(self.route_counts),
            "table_version": self.table.version,
        }

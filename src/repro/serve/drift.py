"""Format-drift detection as pure monoid algebra.

A route's plan was synthesized for a :class:`KeyPattern`; live traffic
is sampled into :class:`PatternAccumulator`s.  Both live in the same
quad semilattice: a pattern maps *exactly* onto an accumulator state
(:func:`accumulator_from_pattern` — concrete quads become base bits,
⊤ quads become diff bits), so "has the format drifted?" reduces to

    merged = from_pattern(plan.pattern) ⊔ observed
    drifted ⇔ merged ≠ plan.pattern

with no re-inference over raw keys.  Two drift kinds fall out of the
comparison, matching the ROADMAP's triggers:

- ``new_length``: the merged length interval is strictly wider than the
  plan's (keys shorter than ``min_length`` or longer than
  ``max_length`` were observed);
- ``widened_byte_class``: some byte position that the plan held
  (partially) constant varied in the sample — its variable-bit mask
  grew.

Both checks are exact, not heuristic: the semilattice join loses
nothing the synthesis pipeline would have used.  The reconciler feeds
the ``merged_pattern`` of a drifted report straight back into
:func:`repro.core.synthesis.synthesize` with ``verify="strict"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.fast_infer import PatternAccumulator
from repro.core.pattern import KeyPattern
from repro.core.quads import QUADS_PER_BYTE

DRIFT_NEW_LENGTH = "new_length"
DRIFT_WIDENED_BYTE_CLASS = "widened_byte_class"

DRIFT_KINDS = (DRIFT_NEW_LENGTH, DRIFT_WIDENED_BYTE_CLASS)


def accumulator_from_pattern(pattern: KeyPattern) -> PatternAccumulator:
    """Embed a pattern into accumulator state, exactly.

    The returned accumulator finishes back to a pattern with the same
    byte templates and length bounds (``count`` is 1 — only emptiness
    matters to the monoid).  Merging observed traffic into it therefore
    computes the join of "everything the plan already covers" with
    "everything the sample saw".

    Raises:
        ValueError: for unbounded patterns (``max_length is None``);
            the serving layer never routes those through drift
            detection because the accumulator tracks a finite
            ``max_length``.
    """
    if pattern.max_length is None:
        raise ValueError(
            "cannot embed an unbounded pattern into accumulator state"
        )
    min_len = pattern.min_length
    base = bytearray(min_len)
    diff_bytes = bytearray(min_len)
    for index in range(min_len):
        quads = pattern.quads[
            QUADS_PER_BYTE * index : QUADS_PER_BYTE * (index + 1)
        ]
        value = 0
        var_mask = 0
        for quad, shift in zip(quads, (6, 4, 2, 0)):
            if quad is None:
                var_mask |= 3 << shift
            else:
                value |= quad << shift
        base[index] = value
        diff_bytes[index] = var_mask
    return PatternAccumulator.from_state(
        (
            1,
            min_len,
            pattern.max_length,
            bytes(base),
            int.from_bytes(bytes(diff_bytes), "big"),
        )
    )


def copy_accumulator(accumulator: PatternAccumulator) -> PatternAccumulator:
    """An independent accumulator with the same state (merge mutates)."""
    return PatternAccumulator.from_state(accumulator.state())


@dataclass(frozen=True)
class DriftReport:
    """The verdict of one drift check for one route.

    Attributes:
        drifted: True when the merged pattern differs from the plan's.
        reasons: subset of :data:`DRIFT_KINDS`, empty when not drifted.
        observed_count: keys folded into the observed accumulator.
        widened_positions: byte indices whose variable-bit mask grew
            (``widened_byte_class`` evidence).
        observed_lengths: the sample's (min, max) length interval.
        merged_pattern: the join of plan pattern and observation — the
            resynthesis input — or None when nothing drifted or the
            sample was below ``min_keys``.
        insufficient: True when the sample was too small to judge.
    """

    drifted: bool
    reasons: Tuple[str, ...]
    observed_count: int
    widened_positions: Tuple[int, ...] = ()
    observed_lengths: Tuple[int, int] = (0, 0)
    merged_pattern: Optional[KeyPattern] = field(default=None, repr=False)
    insufficient: bool = False


def detect_drift(
    pattern: KeyPattern,
    observed: PatternAccumulator,
    min_keys: int = 1,
) -> DriftReport:
    """Compare an observed sample against the pattern a plan serves.

    ``observed`` is not mutated.  Samples smaller than ``min_keys``
    yield a non-drifted report flagged ``insufficient`` — the
    reconciler keeps accumulating rather than resynthesizing off a
    handful of outliers.
    """
    count = observed.count
    if count == 0:
        return DriftReport(False, (), 0, insufficient=min_keys > 0)
    lengths = (observed.min_length, observed.max_length)
    if count < min_keys:
        return DriftReport(
            False, (), count, observed_lengths=lengths, insufficient=True
        )
    merged = (
        accumulator_from_pattern(pattern).merge(copy_accumulator(observed))
    ).finish()
    reasons: List[str] = []
    if (
        merged.min_length < pattern.min_length
        or pattern.max_length is None
        or merged.max_length > pattern.max_length
    ):
        reasons.append(DRIFT_NEW_LENGTH)
    widened: List[int] = []
    for index in range(merged.min_length):
        plan_mask = pattern.byte_pattern(index).variable_mask
        if merged.byte_pattern(index).variable_mask & ~plan_mask:
            widened.append(index)
    if widened:
        reasons.append(DRIFT_WIDENED_BYTE_CLASS)
    if not reasons:
        return DriftReport(False, (), count, observed_lengths=lengths)
    return DriftReport(
        True,
        tuple(reasons),
        count,
        widened_positions=tuple(widened),
        observed_lengths=lengths,
        merged_pattern=merged,
    )


def route_affinity(
    pattern: KeyPattern, observed: PatternAccumulator
) -> float:
    """How plausibly an unrouted sample belongs to ``pattern``, in [0, 1].

    Scored over the plan's fully-constant byte positions within the
    common prefix: the fraction whose observed byte stayed constant at
    the plan's value.  Constant bytes are the format's *landmarks*
    (delimiters, literal prefixes); keys that drift in length or
    character class still carry them, while keys of a different format
    do not.  A pattern with no constant landmark scores 0 — attribution
    falls to whoever else claims the sample.
    """
    if observed.count == 0:
        return 0.0
    _, obs_min, _obs_max, obs_base, obs_diff = observed.state()
    prefix = min(pattern.min_length, obs_min)
    if prefix == 0:
        return 0.0
    diff_bytes = obs_diff.to_bytes(obs_min, "big")[:prefix]
    landmarks = [
        index
        for index in range(prefix)
        if pattern.byte_pattern(index).is_constant
    ]
    if not landmarks:
        return 0.0
    agree = sum(
        1
        for index in landmarks
        if diff_bytes[index] == 0
        and obs_base[index] == pattern.byte_pattern(index).const_value
    )
    return agree / len(landmarks)

"""The sharded online hash service: registration, routing, hot swaps.

:class:`HashService` is the long-running front-end the ROADMAP's
"online hash service" item calls for.  It owns N :class:`Shard`s, an
authoritative immutable :class:`RouteTable`, and (optionally) a
background :class:`~repro.serve.reconciler.Reconciler`.  Threads are
bound to shards on first use via a thread-local — round-robin, so up
to N submitter threads each get a private, lock-free lane; thread
N + 1 shares a lane, which is transparently *promoted* to the locked
discipline before the second submitter touches it.

Traffic interfaces:

- :meth:`submit` — streaming: keys buffer per route and flush through
  the fastest batch tier (native ``hash_many_array`` when available);
  results are delivered to the service ``sink``.  This is the
  high-throughput path the replay benchmark measures.
- :meth:`hash` / :meth:`hash_many` / :meth:`hash_many_array` —
  synchronous, for request/response callers.

Hot swaps: the reconciler (or any caller of :meth:`swap_route`) builds
a fresh :class:`RouteState` — plan re-synthesized under
``verify="strict"``, callables pre-compiled — and the service installs
a new table snapshot into every shard with one reference store each.
Traffic never waits: resynthesis happens off the hot path, and until
the store lands each shard keeps serving the stale (still correct for
conforming keys) plan.
"""

from __future__ import annotations

import threading
import time
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.core.fast_infer import as_key_bytes, infer_pattern_fast
from repro.core.inference import KeyLike
from repro.core.plan import HashFamily
from repro.core.synthesis import FormatSource, SynthesizedHash
from repro.hashes.murmur_stl import stl_hash_bytes
from repro.obs.metrics import (
    MetricsRegistry,
    exponential_buckets,
    get_registry,
)
from repro.serve.routes import RouteState, RouteTable, build_route_state
from repro.serve.shard import (
    DEFAULT_FLUSH_SIZE,
    Shard,
    SinkCallable,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less installs
    _np = None

SWAP_MS_BUCKETS = exponential_buckets(1.0, 2.0, 14)
"""Histogram edges for hot-swap latency: 1 ms .. ~8 s."""

DEFAULT_SAMPLE_EVERY = 64
"""Default sampling period: ~1/64 of traffic feeds drift detection."""


class HashService:
    """Sharded, thread-safe serving layer over synthesized hashes.

    Args:
        shards: number of submission lanes.  Up to this many submitter
            threads run lock-free; more share lanes under a mutex.
        family: default synthesis family for registrations.
        fallback: hash for keys no route matches (STL murmur port,
            SEPE's own fallback rule).
        flush_size: keys buffered per route per shard before a batched
            flush.
        sample_every: feed ~1 key in this many into the per-shard
            pattern accumulators (rounded to a power of two; 0
            disables sampling and with it drift detection).
        prefer_native: route through the JIT tier when it is available;
            defaults True and degrades silently per route.
        verify: verification mode for *registrations* (hot swaps are
            always ``"strict"``; see the reconciler).
        sink: receives every flushed batch from :meth:`submit` traffic
            as ``(route_state, keys, values)``.
        registry: metrics registry; defaults to the process registry so
            ``sepe obs`` surfaces serve counters.
    """

    def __init__(
        self,
        shards: int = 4,
        *,
        family: HashFamily = HashFamily.PEXT,
        fallback: Callable[[bytes], int] = stl_hash_bytes,
        flush_size: int = DEFAULT_FLUSH_SIZE,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        prefer_native: bool = True,
        verify: Optional[str] = None,
        sink: Optional[SinkCallable] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.family = family
        self.prefer_native = prefer_native
        self.verify = verify
        self.registry = registry if registry is not None else get_registry()
        self._table = RouteTable(())
        self._fallback = fallback
        self._shards: List[Shard] = [
            Shard(
                index,
                self._table,
                fallback,
                flush_size=flush_size,
                sample_every=sample_every,
                sink=sink,
            )
            for index in range(shards)
        ]
        self._admin_lock = threading.Lock()
        self._tls = threading.local()
        self._assigned = 0
        self._clients_per_shard = [0] * shards
        self._route_serial = 0
        self._started_monotonic = time.monotonic()
        self._reconciler = None
        self._swap_counter = self.registry.counter("serve.swaps")
        self._swap_latency = self.registry.histogram(
            "serve.swap_ms", SWAP_MS_BUCKETS
        )
        self._promotions = self.registry.counter("serve.shard_promotions")
        self._table_version = self.registry.gauge("serve.table_version")

    # -- registration ---------------------------------------------------

    def register(
        self,
        source: Union[FormatSource, SynthesizedHash],
        family: Optional[HashFamily] = None,
        label: Optional[str] = None,
    ) -> RouteState:
        """Register a format; synthesizes unless given an artifact.

        Safe to call while traffic is flowing: the new table installs
        by reference swap like a hot swap does.

        Raises:
            SynthesisError: for unsupported formats (sub-word keys go
                to the fallback instead, as in SEPE itself).
            VerificationError: under ``verify="strict"``.
        """
        with self._admin_lock:
            route_id = f"r{self._route_serial}"
            self._route_serial += 1
            state = build_route_state(
                route_id,
                source,
                family=family or self.family,
                prefer_native=self.prefer_native,
                verify=self.verify,
                label=label,
            )
            self._install_table(self._table.added(state))
            return state

    def register_examples(
        self,
        keys: Iterable[KeyLike],
        family: Optional[HashFamily] = None,
        label: Optional[str] = None,
    ) -> RouteState:
        """Register a format inferred from example keys (Figure 5a)."""
        key_bytes = [as_key_bytes(key) for key in keys]
        return self.register(
            infer_pattern_fast(key_bytes), family=family, label=label
        )

    def _install_table(self, table: RouteTable) -> None:
        """Point every shard at a new snapshot (admin lock held).

        Two reference stores per shard (``table`` then its lifted
        ``fast_map``); a reader interleaving between them sees two
        complete snapshots at most one swap apart, which the stale-plan
        contract already permits.
        """
        self._table = table
        for shard in self._shards:
            shard.table = table
            shard.fast_map = table.fast
        self._table_version.set(table.version)

    def swap_route(self, new_state: RouteState) -> None:
        """Install a replacement route state (the hot-swap commit).

        The caller (normally the reconciler) has already re-synthesized
        and verified; this method only swaps references, so traffic is
        never paused.
        """
        with self._admin_lock:
            self._install_table(self._table.with_route(new_state))
            self._swap_counter.inc()

    def observe_swap_latency(self, elapsed_ms: float) -> None:
        self._swap_latency.observe(elapsed_ms)

    # -- shard assignment ----------------------------------------------

    def shard_for_caller(self) -> Shard:
        """The calling thread's lane, bound round-robin on first use."""
        try:
            return self._tls.shard
        except AttributeError:
            return self._bind_caller()

    def _bind_caller(self) -> Shard:
        with self._admin_lock:
            index = self._assigned % len(self._shards)
            self._assigned += 1
            self._clients_per_shard[index] += 1
            shard = self._shards[index]
            if self._clients_per_shard[index] == 2:
                # Second submitter on this lane: end the single-writer
                # era *before* this thread's first operation.
                shard.make_shared()
                self._promotions.inc()
        self._tls.shard = shard
        return shard

    # -- traffic --------------------------------------------------------

    def submit(self, key: bytes) -> None:
        """Streaming entry point: buffer, batch, deliver to the sink."""
        try:
            shard = self._tls.shard
        except AttributeError:
            shard = self._bind_caller()
        shard.submit(key)

    def submitter(self) -> Callable[[bytes], None]:
        """The calling thread's bound ``submit``, for tight loops.

        Equivalent to calling :meth:`submit` per key, minus the
        thread-local lookup and the service call frame — the pattern
        for producer threads that stream millions of keys::

            submit = service.submitter()   # once, on the producer
            for key in stream:
                submit(key)

        The binding stays valid across hot swaps (shards re-read their
        table snapshot per key) and across lane promotion (the bound
        method observes ``shared`` like any other call).
        """
        return self.shard_for_caller().submit

    def hash(self, key: bytes) -> int:
        """Synchronous scalar hash through the caller's lane."""
        return self.shard_for_caller().hash(key)

    def __call__(self, key: bytes) -> int:
        return self.shard_for_caller().hash(key)

    def hash_many(self, keys: Sequence[bytes]) -> List[int]:
        """Synchronous batch hash, grouped by route."""
        return self.shard_for_caller().hash_many(keys)

    def hash_many_array(self, keys: Sequence[bytes]):
        """Batch hash to a NumPy uint64 array (fastest for one route).

        Homogeneous batches served by a native-backed route skip list
        boxing entirely; everything else goes through
        :meth:`hash_many` and converts.

        Raises:
            RuntimeError: when NumPy is unavailable.
        """
        if _np is None:
            raise RuntimeError("hash_many_array requires NumPy")
        shard = self.shard_for_caller()
        if keys:
            table = shard.table
            length = len(keys[0])
            route = table.fast.get(length)
            if (
                route is not None
                and route.batch_array is not None
                and all(len(key) == length for key in keys)
            ):
                return shard.hash_batch_direct(route, list(keys))
        return _np.asarray(shard.hash_many(keys), dtype=_np.uint64)

    def flush(self) -> None:
        """Flush every shard's pending buffers.

        Intended at quiesce points (end of stream, shutdown): flushing
        an exclusive shard from another thread while its owner is
        mid-submit is outside the single-writer contract.
        """
        for shard in self._shards:
            shard.flush()

    # -- lifecycle ------------------------------------------------------

    def start(
        self,
        interval: float = 0.25,
        *,
        drift_min_keys: int = 64,
        affinity_threshold: float = 0.5,
    ):
        """Start the background reconciler; returns it.

        Raises:
            RuntimeError: when already started.
        """
        from repro.serve.reconciler import Reconciler

        with self._admin_lock:
            if self._reconciler is not None:
                raise RuntimeError("reconciler already running")
            reconciler = Reconciler(
                self,
                interval=interval,
                drift_min_keys=drift_min_keys,
                affinity_threshold=affinity_threshold,
            )
            self._reconciler = reconciler
        reconciler.start()
        return reconciler

    def stop(self) -> None:
        """Stop the reconciler (if running); traffic may continue."""
        with self._admin_lock:
            reconciler = self._reconciler
            self._reconciler = None
        if reconciler is not None:
            reconciler.stop()

    def __enter__(self) -> "HashService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
        self.flush()

    @property
    def reconciler(self):
        return self._reconciler

    @property
    def table(self) -> RouteTable:
        """The authoritative current snapshot."""
        return self._table

    @property
    def shards(self) -> List[Shard]:
        return list(self._shards)

    # -- introspection --------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Aggregate advisory snapshot across all shards.

        Counters are read without stopping traffic, so totals may lag
        in-flight operations by a few keys; the shape is stable::

            {
              "shards": [...per-shard snapshots...],
              "routes": [{"route_id", "label", "generation", "native",
                          "hashed", "qps"}, ...],
              "table_version": 3, "hashed": ..., "fallback": ...,
              "sampled": ..., "pending": ..., "qps": ...,
            }
        """
        table = self._table
        shard_snapshots = [shard.snapshot() for shard in self._shards]
        per_route: Dict[str, int] = {}
        for snapshot in shard_snapshots:
            for route_id, count in snapshot["routes"].items():
                per_route[route_id] = per_route.get(route_id, 0) + count
        elapsed = time.monotonic() - self._started_monotonic
        hashed = sum(snapshot["hashed"] for snapshot in shard_snapshots)
        routes = [
            {
                "route_id": route.route_id,
                "label": route.label,
                "generation": route.generation,
                "native": route.native,
                "hashed": per_route.get(route.route_id, 0),
                "qps": (
                    per_route.get(route.route_id, 0) / elapsed
                    if elapsed > 0
                    else 0.0
                ),
            }
            for route in table.routes
        ]
        return {
            "shards": shard_snapshots,
            "routes": routes,
            "table_version": table.version,
            "registered": len(table),
            "hashed": hashed,
            "fallback": sum(
                snapshot["fallback"] for snapshot in shard_snapshots
            ),
            "sampled": sum(
                snapshot["sampled"] for snapshot in shard_snapshots
            ),
            "pending": sum(
                snapshot["pending"] for snapshot in shard_snapshots
            ),
            "elapsed_seconds": elapsed,
            "qps": hashed / elapsed if elapsed > 0 else 0.0,
        }

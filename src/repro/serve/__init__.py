"""The sharded online hash service (ROADMAP: online serving + drift).

Public surface::

    from repro.serve import HashService

    service = HashService(shards=4)
    service.register(r"\\d{3}-\\d{2}-\\d{4}")   # or register_examples(keys)
    service.start()                            # background reconciler

    service.submit(key)        # streaming: batched, delivered to sink
    service.hash(key)          # synchronous scalar
    service.hash_many(keys)    # synchronous batch

Layers, hot path downward:

- :mod:`repro.serve.service` — :class:`HashService`: registration,
  thread→shard binding, atomic table install, lifecycle.
- :mod:`repro.serve.shard` — the single-writer submission lanes.
- :mod:`repro.serve.routes` — immutable :class:`RouteTable` /
  :class:`RouteState` snapshots (the thing that hot-swaps).
- :mod:`repro.serve.drift` — pattern-vs-sample drift detection as
  monoid algebra over :class:`~repro.core.fast_infer.PatternAccumulator`.
- :mod:`repro.serve.reconciler` — the background resynthesize-and-swap
  loop, ``verify="strict"`` gated.
- :mod:`repro.serve.replay` — the traffic-replay benchmark harness.
"""

from repro.serve.drift import (
    DRIFT_KINDS,
    DRIFT_NEW_LENGTH,
    DRIFT_WIDENED_BYTE_CLASS,
    DriftReport,
    accumulator_from_pattern,
    detect_drift,
    route_affinity,
)
from repro.serve.reconciler import Reconciler, SwapEvent, SwapFailure
from repro.serve.replay import (
    ReplayConfig,
    VerifyingSink,
    build_schedules,
    measure_scaling,
    run_replay,
    scaling_ratio,
)
from repro.serve.routes import RouteState, RouteTable, build_route_state
from repro.serve.service import HashService
from repro.serve.shard import Shard, sampling_mask

__all__ = [
    "DRIFT_KINDS",
    "DRIFT_NEW_LENGTH",
    "DRIFT_WIDENED_BYTE_CLASS",
    "DriftReport",
    "HashService",
    "Reconciler",
    "ReplayConfig",
    "RouteState",
    "RouteTable",
    "Shard",
    "SwapEvent",
    "SwapFailure",
    "VerifyingSink",
    "accumulator_from_pattern",
    "build_route_state",
    "build_schedules",
    "detect_drift",
    "measure_scaling",
    "route_affinity",
    "run_replay",
    "sampling_mask",
    "scaling_ratio",
]

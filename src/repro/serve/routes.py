"""Immutable route state for the sharded hash service.

The serving hot path must never take a lock, so the routing structure
is a persistent data structure: a :class:`RouteTable` is built once,
shared by reference with every shard, and *replaced* — never mutated —
when the reconciler lands a resynthesized plan.  Under CPython a plain
attribute store is an atomic reference swap, so readers either see the
whole old table or the whole new one; a shard mid-batch keeps hashing
with the state it already resolved (the "stale plan serves until the
swap lands" contract).

Each :class:`RouteState` pre-resolves the fastest callable of every
kind at build time — scalar (native → interp), list batch (ordered by
the static cost model's predicted ns/key, falling back to the fixed
native → NumPy preference when the model abstains) and array batch
(native only) — through the process
:class:`repro.codegen.cache.CompileCache`, so a hot-swap pays JIT cost
in the reconciler thread and the traffic threads only ever call
already-compiled functions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.pattern import KeyPattern
from repro.core.plan import HashFamily
from repro.core.synthesis import FormatSource, SynthesizedHash, synthesize

_FAST_LENGTH_SPAN = 64
"""Widest bounded variable-length range eagerly expanded into the
length → route map; wider ranges resolve through the match walk."""

_FIXED_BATCH_ORDER = ("native", "numpy")
"""Fallback batch-tier preference when the cost model abstains."""


def _pick_batch_tier(
    synthesized: SynthesizedHash,
    candidates: Dict[str, Callable],
) -> Tuple[Callable, str, bool]:
    """Choose the batch callable by predicted cost, or fixed order.

    Returns ``(callable, tier_name, cost_ordered)``.  The static cost
    model (:mod:`repro.verify.cost`) prices every candidate tier; when
    it prices all of them, the cheapest wins.  When it abstains on any
    candidate — unknown opcode, non-vectorizable plan — the fixed
    native → NumPy preference decides, so an unpriceable plan routes
    exactly as it did before the model existed.
    """
    from repro.obs.metrics import get_registry
    from repro.verify.cost import predict_plan_costs

    registry = get_registry()
    prediction = predict_plan_costs(synthesized.plan)
    if all(prediction.cost(tier) is not None for tier in candidates):
        for tier in prediction.order():
            if tier in candidates:
                registry.counter("serve.routes.cost_ordered").inc()
                return candidates[tier], tier, True
    registry.counter("serve.routes.fixed_order").inc()
    for tier in _FIXED_BATCH_ORDER:
        if tier in candidates:
            return candidates[tier], tier, False
    raise ValueError("no batch candidates")  # pragma: no cover


class RouteState:
    """One route's plan plus its pre-resolved callables, frozen.

    Attributes:
        route_id: stable identity across hot swaps (``"r0"``, ...).
        label: human-readable route name (the plan's format regex).
        synthesized: the full synthesis artifact behind the callables.
        generation: 0 at registration, +1 per verified hot swap.
        scalar: fastest ``hash(key) -> int`` available.
        batch: fastest ``hash_many(keys) -> list[int]`` available.
        batch_array: native ``hash_many_array`` returning a NumPy
            uint64 array, or None when the native tier degraded.
        native: True when the native module backs the callables.
        batch_tier: name of the tier serving ``batch`` (``"native"`` or
            ``"numpy"``).
        cost_ordered: True when the static cost model picked the batch
            tier; False when it abstained and the fixed preference
            order decided.
    """

    __slots__ = (
        "route_id",
        "label",
        "synthesized",
        "generation",
        "scalar",
        "batch",
        "batch_array",
        "native",
        "batch_tier",
        "cost_ordered",
    )

    def __init__(
        self,
        route_id: str,
        synthesized: SynthesizedHash,
        generation: int = 0,
        prefer_native: bool = True,
        label: Optional[str] = None,
    ):
        self.route_id = route_id
        self.synthesized = synthesized
        self.generation = generation
        self.label = label or synthesized.plan.pattern_regex or route_id
        scalar = synthesized.function
        batch_array = None
        native = False
        module = synthesized.native_module if prefer_native else None
        # Candidate batch callables by cost-model tier name.  The list
        # batch kernel is the "numpy" tier whether or not it actually
        # vectorized — when the model abstains on it (tail_xor), the
        # fixed order decides, which is exactly the loop-fallback case.
        candidates = {"numpy": synthesized.batch_function}
        if module is not None:
            scalar = module
            candidates["native"] = module.hash_many
            try:
                from repro.codegen.native import _HAVE_NUMPY
            except ImportError:  # pragma: no cover - defensive
                _HAVE_NUMPY = False
            if _HAVE_NUMPY:
                batch_array = module.hash_many_array
            native = True
        self.batch, self.batch_tier, self.cost_ordered = _pick_batch_tier(
            synthesized, candidates
        )
        self.scalar = scalar
        self.batch_array = batch_array
        self.native = native

    @property
    def pattern(self) -> KeyPattern:
        """The key pattern this route's plan was synthesized for."""
        return self.synthesized.pattern

    @property
    def family(self) -> HashFamily:
        return self.synthesized.family

    def __repr__(self) -> str:
        return (
            f"RouteState({self.route_id}, {self.label!r}, "
            f"gen={self.generation}, native={self.native})"
        )


def build_route_state(
    route_id: str,
    source: Union[FormatSource, SynthesizedHash],
    family: HashFamily = HashFamily.PEXT,
    *,
    generation: int = 0,
    prefer_native: bool = True,
    verify: Optional[str] = None,
    label: Optional[str] = None,
) -> RouteState:
    """Synthesize (unless given an artifact) and freeze a route state.

    Raises:
        SynthesisError: propagated for unsupported formats.
        VerificationError: under ``verify="strict"`` when the static
            verifier refutes the plan — the swap/registration must not
            happen.
    """
    if isinstance(source, SynthesizedHash):
        synthesized = source
    else:
        synthesized = synthesize(source, family=family, verify=verify)
    return RouteState(
        route_id,
        synthesized,
        generation=generation,
        prefer_native=prefer_native,
        label=label,
    )


class RouteTable:
    """An immutable snapshot of every route, with O(1) length routing.

    ``fast`` maps key lengths that exactly one route can serve to that
    route — the shard hot path is one dict probe against it.  Ambiguous
    lengths (two fixed routes colliding, or a variable route
    overlapping a fixed one) resolve through :meth:`resolve`'s template
    walk, same policy as :class:`repro.core.dispatch.FormatDispatcher`.
    """

    __slots__ = ("version", "routes", "fast", "_fixed", "_variable")

    def __init__(self, routes: Sequence[RouteState], version: int = 0):
        self.version = version
        self.routes: Tuple[RouteState, ...] = tuple(routes)
        fixed: Dict[int, List[RouteState]] = {}
        variable: List[RouteState] = []
        for route in self.routes:
            pattern = route.pattern
            if pattern.is_fixed_length:
                fixed.setdefault(pattern.body_length, []).append(route)
            else:
                variable.append(route)
        self._fixed = {length: tuple(states) for length, states in
                       fixed.items()}
        self._variable = tuple(variable)
        self.fast = self._build_fast_map(fixed, variable)

    @staticmethod
    def _build_fast_map(
        fixed: Dict[int, List[RouteState]],
        variable: List[RouteState],
    ) -> Dict[int, RouteState]:
        claims: Dict[int, List[RouteState]] = {
            length: list(states) for length, states in fixed.items()
        }
        wide = False
        for route in variable:
            pattern = route.pattern
            upper = pattern.max_length
            if (
                upper is None
                or upper - pattern.min_length > _FAST_LENGTH_SPAN
            ):
                wide = True  # could claim almost any length; no fast map
                continue
            for length in range(pattern.min_length, upper + 1):
                claims.setdefault(length, []).append(route)
        if wide:
            return {}
        return {
            length: states[0]
            for length, states in claims.items()
            if len(states) == 1
        }

    def resolve(self, key: bytes) -> Optional[RouteState]:
        """The route serving ``key``, or None (fallback traffic).

        Lengths owned by exactly one route resolve by length alone —
        the same trust-the-length policy as the dispatcher's route
        cache (the paper's functions assume conforming input, footnote
        3).  Contested lengths fall through to template matching.
        """
        route = self.fast.get(len(key))
        if route is not None:
            return route
        return self.resolve_checked(key)

    def resolve_checked(self, key: bytes) -> Optional[RouteState]:
        """Template-matching resolution (no length-trust shortcut)."""
        for route in self._fixed.get(len(key), ()):
            if route.pattern.matches(key):
                return route
        for route in self._variable:
            if route.pattern.matches(key):
                return route
        return None

    def get(self, route_id: str) -> Optional[RouteState]:
        for route in self.routes:
            if route.route_id == route_id:
                return route
        return None

    def with_route(self, new_state: RouteState) -> "RouteTable":
        """A new table with the same-id route replaced (the hot swap)."""
        if self.get(new_state.route_id) is None:
            raise KeyError(f"no route {new_state.route_id!r} to replace")
        replaced = tuple(
            new_state if route.route_id == new_state.route_id else route
            for route in self.routes
        )
        return RouteTable(replaced, version=self.version + 1)

    def added(self, new_state: RouteState) -> "RouteTable":
        """A new table with an additional route appended."""
        if self.get(new_state.route_id) is not None:
            raise KeyError(f"route {new_state.route_id!r} already exists")
        return RouteTable(
            self.routes + (new_state,), version=self.version + 1
        )

    def __len__(self) -> int:
        return len(self.routes)

    def __repr__(self) -> str:
        return (
            f"RouteTable(v{self.version}, "
            f"routes=[{', '.join(r.route_id for r in self.routes)}])"
        )

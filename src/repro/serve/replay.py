"""Traffic replay: the serve layer under realistic concurrent load.

This is the measurement harness behind ``benchmarks/bench_serve.py``
and the ``sepe serve`` CLI.  It drives millions of
:mod:`repro.keygen` keys through a :class:`HashService` from several
submitter threads, optionally injecting a mid-stream format change,
and reports:

- **shard scaling** — aggregate streaming throughput with the same
  thread count over 1/2/4/... shards.  More shards ⇒ more lanes run
  the lock-free single-writer discipline instead of the contended
  mutex, which is where the speedup comes from on a GIL runtime (the
  hashing itself is batched into native code either way);
- **drift convergence** — with injection enabled, the replay records
  every verified hot swap (cause, swap latency, generations) and
  asserts *zero hash errors*: a verifying sink spot-checks flushed
  batches against the scalar reference tier throughout, across the
  swap boundary.

Key streams are deterministic (seeded) so runs are comparable; drifted
keys are derived from conforming ones:

- ``widened_byte_class``: SSN area digits re-encoded as hex letters —
  same length, same landmarks ('-' at 3 and 6), wider byte classes, so
  the keys still route to the SSN plan and its own samples widen;
- ``new_length``: a two-digit suffix appended — the keys miss every
  route, land in the fallback/unrouted pool, and come back via
  landmark-affinity attribution.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.plan import HashFamily
from repro.keygen import Distribution, generate_keys, key_spec
from repro.obs.metrics import MetricsRegistry
from repro.serve.drift import DRIFT_NEW_LENGTH, DRIFT_WIDENED_BYTE_CLASS
from repro.serve.routes import RouteState
from repro.serve.service import HashService

_HEX_FOR_DIGIT = b"abcdefabcd"
"""Digit → hex-letter substitution used by the widened-class injector."""


@dataclass
class ReplayConfig:
    """One replay run, fully determined (seeded) by its fields."""

    shards: int = 2
    threads: int = 4
    keys_per_thread: int = 100_000
    seconds: Optional[float] = None
    key_types: Tuple[str, ...] = ("SSN", "MAC")
    family: HashFamily = HashFamily.PEXT
    flush_size: int = 1024
    sample_every: int = 64
    prefer_native: bool = True
    drift: bool = False
    drift_kind: str = DRIFT_WIDENED_BYTE_CLASS
    drift_at: float = 0.4
    drift_key_type: str = "SSN"
    reconcile_interval: float = 0.2
    drift_min_keys: int = 64
    check_every_batches: int = 16
    seed: int = 0

    def describe(self) -> Dict[str, object]:
        record = asdict(self)
        record["family"] = self.family.value
        record["key_types"] = list(self.key_types)
        return record


class VerifyingSink:
    """Delivery counter with spot-check verification against the
    scalar reference tier.

    Every ``check_every``-th delivered batch has its first and last
    values recomputed through the route's *generated Python* scalar
    (the tier the whole native/NumPy stack is parity-pinned against);
    a mismatch is a hash error.  Checks run outside the counter lock,
    and crucially keep running across hot swaps — the batch carries the
    :class:`RouteState` that hashed it, so a stale-plan flush verifies
    against the stale plan, exactly the correctness contract.
    """

    def __init__(self, check_every: int = 16):
        self.check_every = check_every
        self.lock = threading.Lock()
        self.delivered = 0
        self.batches = 0
        self.fallback_keys = 0
        self.checked = 0
        self.errors = 0
        self.generations_seen: Dict[Tuple[str, int], int] = {}

    def __call__(
        self,
        route: Optional[RouteState],
        keys: List[bytes],
        values: Sequence,
    ) -> None:
        with self.lock:
            self.batches += 1
            self.delivered += len(keys)
            if route is None:
                self.fallback_keys += len(keys)
                return
            marker = (route.route_id, route.generation)
            self.generations_seen[marker] = (
                self.generations_seen.get(marker, 0) + len(keys)
            )
            check = (
                self.check_every > 0
                and self.batches % self.check_every == 0
            )
        if not check:
            return
        reference = route.synthesized.function
        mismatches = 0
        for index in (0, len(keys) - 1):
            if int(values[index]) != reference(keys[index]):
                mismatches += 1
        with self.lock:
            self.checked += 1
            self.errors += mismatches


# -- key streams -------------------------------------------------------------


def drifted_key(key: bytes, kind: str) -> bytes:
    """Derive a drifted variant of a conforming SSN-style key."""
    if kind == DRIFT_WIDENED_BYTE_CLASS:
        # Area digits become hex letters: length and '-' landmarks
        # survive, the first three byte classes widen.
        head = bytes(_HEX_FOR_DIGIT[byte - 0x30] for byte in key[:3])
        return head + key[3:]
    if kind == DRIFT_NEW_LENGTH:
        return key + b"-7"
    raise ValueError(f"unknown drift kind {kind!r}")


def build_schedules(config: ReplayConfig) -> List[List[bytes]]:
    """Deterministic per-thread key schedules, drift pre-applied.

    Each thread's stream interleaves the configured key types
    round-robin; with drift enabled, every ``drift_key_type`` key past
    the ``drift_at`` fraction of the stream is replaced by its drifted
    variant — so the format change hits mid-stream on every thread at
    once, like a coordinated producer rollout.
    """
    per_type = -(-config.keys_per_thread // len(config.key_types))
    schedules: List[List[bytes]] = []
    for thread_index in range(config.threads):
        streams = [
            generate_keys(
                name,
                per_type,
                Distribution.UNIFORM,
                seed=config.seed + 1000 * thread_index + type_index,
            )
            for type_index, name in enumerate(config.key_types)
        ]
        schedule: List[bytes] = []
        for position in range(per_type):
            for stream in streams:
                schedule.append(stream[position])
        schedule = schedule[: config.keys_per_thread]
        if config.drift:
            cut = int(len(schedule) * config.drift_at)
            target_len = key_spec(config.drift_key_type).length
            for position in range(cut, len(schedule)):
                key = schedule[position]
                if len(key) == target_len and key[3:4] == b"-":
                    schedule[position] = drifted_key(
                        key, config.drift_kind
                    )
        schedules.append(schedule)
    return schedules


# -- the replay itself -------------------------------------------------------


def _submit_worker(
    service: HashService,
    schedule: List[bytes],
    barrier: threading.Barrier,
    deadline: Optional[float],
    submitted: List[int],
    slot: int,
) -> None:
    submit = service.submitter()
    barrier.wait()
    count = 0
    if deadline is None:
        for key in schedule:
            submit(key)
        count = len(schedule)
    else:
        while time.monotonic() < deadline:
            for key in schedule:
                submit(key)
            count += len(schedule)
    submitted[slot] = count


def run_replay(
    config: ReplayConfig,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Run one replay; returns a plain-dict report.

    The service is constructed fresh (routes registered, native tier
    pre-compiled), the reconciler started when drift injection is on,
    and all threads released together — so the measured window covers
    submission and flushing only, not synthesis.  After the stream
    drains, one final deterministic reconcile pass catches a drift
    whose samples arrived after the last timed pass, making
    "exactly one verified swap" assertable in CI.
    """
    schedules = build_schedules(config)
    sink = VerifyingSink(check_every=config.check_every_batches)
    service = HashService(
        shards=config.shards,
        family=config.family,
        flush_size=config.flush_size,
        sample_every=config.sample_every,
        prefer_native=config.prefer_native,
        sink=sink,
        registry=registry if registry is not None else MetricsRegistry(),
    )
    for name in config.key_types:
        service.register(key_spec(name).regex, label=name)
    reconciler = None
    if config.drift:
        reconciler = service.start(
            interval=config.reconcile_interval,
            drift_min_keys=config.drift_min_keys,
        )
    barrier = threading.Barrier(config.threads + 1)
    submitted = [0] * config.threads
    deadline: Optional[float] = None
    if config.seconds is not None:
        deadline = time.monotonic() + config.seconds
    threads = [
        threading.Thread(
            target=_submit_worker,
            args=(
                service,
                schedules[index],
                barrier,
                deadline,
                submitted,
                index,
            ),
            name=f"sepe-replay-{index}",
        )
        for index in range(config.threads)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    service.flush()
    elapsed = time.perf_counter() - started
    if reconciler is not None and not reconciler.events:
        # Samples that landed after the last timed pass: drain them
        # deterministically before declaring the run drift-free.
        reconciler.reconcile_once()
    service.stop()
    total = sum(submitted)
    stats = service.stats()
    report: Dict[str, object] = {
        "config": config.describe(),
        "elapsed_seconds": elapsed,
        "submitted": total,
        "delivered": sink.delivered,
        "keys_per_sec": total / elapsed if elapsed > 0 else 0.0,
        "ns_per_key": elapsed / total * 1e9 if total else 0.0,
        "hash_errors": sink.errors,
        "checked_batches": sink.checked,
        "fallback_keys": sink.fallback_keys,
        "generations_served": {
            f"{route_id}@g{generation}": count
            for (route_id, generation), count in sorted(
                sink.generations_seen.items()
            )
        },
        "stats": stats,
    }
    if reconciler is not None:
        report["swap_events"] = [
            event.to_dict() for event in reconciler.events
        ]
        report["swap_failures"] = [
            {
                "route_id": failure.route_id,
                "reasons": list(failure.reasons),
                "error": failure.error,
            }
            for failure in reconciler.failures
        ]
    return report


def measure_scaling(
    config: ReplayConfig,
    shard_counts: Sequence[int] = (1, 2, 4),
    repeats: int = 3,
) -> List[Dict[str, object]]:
    """Throughput rows across shard counts, same threads and stream.

    Drift injection is disabled for these rows (it is measured by its
    own run) but sampling stays on — the overhead of feeding the
    accumulators is part of the serving cost being reported.
    """
    from dataclasses import replace as dc_replace

    rows: List[Dict[str, object]] = []
    for shards in shard_counts:
        run_config = dc_replace(config, shards=shards, drift=False)
        samples: List[float] = []
        throughputs: List[float] = []
        for _ in range(repeats):
            report = run_replay(run_config)
            samples.append(report["ns_per_key"])
            throughputs.append(report["keys_per_sec"])
        best = min(samples)
        rows.append(
            {
                "shards": shards,
                "threads": config.threads,
                "keys": config.keys_per_thread * config.threads,
                "ns_per_key": best,
                "keys_per_sec": max(throughputs),
                "samples_ns_per_key": samples,
            }
        )
    return rows


def scaling_ratio(rows: Sequence[Dict[str, object]]) -> Optional[float]:
    """Aggregate-throughput ratio of the widest row over the 1-shard row."""
    by_shards = {row["shards"]: row for row in rows}
    if 1 not in by_shards or len(by_shards) < 2:
        return None
    widest = max(by_shards)
    base = by_shards[1]["keys_per_sec"]
    return by_shards[widest]["keys_per_sec"] / base if base else None

"""A network device inventory: MAC, IPv4 and IPv6 keys side by side.

Network controllers index device state by address strings — three of the
paper's key formats at once.  This example synthesizes all four families
for each format, verifies correctness against the container, and prints
the per-format speed/collision trade-off (the gradual specialization
story of Figure 3: Naive → OffXor → Pext adds constraints, Aes trades
speed for mixing).

Run:
    python examples/network_inventory.py
"""

from repro import HashFamily, synthesize_all_families
from repro.bench.metrics import chi_square_uniformity, total_collisions
from repro.bench.runner import measure_h_time
from repro.containers import UnorderedSet
from repro.keygen import Distribution, generate_keys
from repro.keygen.keyspec import key_spec

FORMATS = ("MAC", "IPV4", "IPV6")
DEVICES = 10_000


def main() -> None:
    for format_name in FORMATS:
        spec = key_spec(format_name)
        keys = generate_keys(format_name, DEVICES, Distribution.UNIFORM, seed=3)
        print(f"== {spec.name}: {spec.regex} ({spec.length} bytes) ==")
        families = synthesize_all_families(spec.regex)
        for family in HashFamily:
            synthesized = families[family]
            seconds = measure_h_time(synthesized.function, keys, repeats=2)
            collisions = total_collisions(synthesized.function, keys)
            chi = chi_square_uniformity(synthesized.function, keys, bins=256)
            loads = len(synthesized.plan.loads)
            print(
                f"  {family.value:7s} loads={loads}  "
                f"hash {seconds * 1000:8.2f} ms  "
                f"collisions {collisions:4d}  chi2 {chi:12.1f}"
                + ("  (bijective)" if synthesized.is_bijective else "")
            )

        # Correctness: every family must agree with the container contract.
        inventory = UnorderedSet(families[HashFamily.PEXT].function)
        for key in keys:
            inventory.insert(key)
        assert len(inventory) == len(set(keys))
        missing = sum(1 for key in keys if key not in inventory)
        print(f"  inventory check: {len(inventory)} devices stored, "
              f"{missing} lookups missed\n")


if __name__ == "__main__":
    main()

"""Quickstart: synthesize a specialized hash and use it in a container.

Mirrors the paper's "getting started" tutorial (Figure 5): build a hash
for fixed-format keys either from a regex or from example keys, inspect
the generated code (Python and the C++ SEPE would ship), and plug the
function into an STL-style unordered map.

Run:
    python examples/quickstart.py
"""

from repro import HashFamily, synthesize, synthesize_from_keys
from repro.containers import UnorderedMap


def main() -> None:
    # -- Figure 5b: synthesis from a format regex -------------------------
    ssn_hash = synthesize(r"\d{3}-\d{2}-\d{4}", HashFamily.PEXT)
    print("== Pext hash for SSN keys ==")
    print(f"bijective: {ssn_hash.is_bijective}")
    print(f"synthesis took {ssn_hash.synthesis_seconds * 1000:.3f} ms")
    print()
    print("-- generated Python (what this reproduction executes) --")
    print(ssn_hash.python_source)
    print("-- generated C++ (what the paper's tool ships) --")
    print(ssn_hash.cpp_source("x86"))

    # -- Figure 5a: synthesis from example keys ---------------------------
    examples = ["192.168.000.001", "010.020.030.040", "255.255.255.255"]
    ipv4_hash = synthesize_from_keys(examples, HashFamily.OFFXOR)
    print("== OffXor hash inferred from IPv4 examples ==")
    print(ipv4_hash.python_source)

    # -- Figure 5d: drop the function into an unordered_map ---------------
    table = UnorderedMap(ssn_hash.function)
    table.insert(b"123-45-6789", "Ada Lovelace")
    table.insert(b"987-65-4321", "Alan Turing")
    print("== container lookups ==")
    print(f"123-45-6789 -> {table.find(b'123-45-6789')}")
    print(f"987-65-4321 -> {table.find(b'987-65-4321')}")
    print(f"bucket collisions: {table.bucket_collisions()}")


if __name__ == "__main__":
    main()

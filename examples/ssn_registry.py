"""A citizen registry keyed by Social Security Numbers.

The scenario the paper's Example 2.3 motivates: an application storing
records under SSN keys (``ddd-dd-dddd``).  The format has everything SEPE
exploits — fixed length, constant separators, digit-only bytes — so the
Pext family builds a *bijection* from SSNs to 64-bit integers: zero hash
collisions by construction.

The script races the synthesized families against the STL baseline on a
realistic insert/lookup/delete workload and reports hashing time,
end-to-end time, and collision counts.

Run:
    python examples/ssn_registry.py
"""

import time

from repro import HashFamily, synthesize
from repro.bench.metrics import total_collisions
from repro.bench.runner import measure_h_time
from repro.containers import UnorderedMap
from repro.hashes import stl_hash_bytes
from repro.keygen import Distribution, generate_keys

NUM_CITIZENS = 20_000


def run_workload(hash_function, keys) -> float:
    """Insert every record, look each one up twice, delete half."""
    registry = UnorderedMap(hash_function)
    started = time.perf_counter()
    for index, ssn in enumerate(keys):
        registry.insert(ssn, f"citizen-{index}")
    for ssn in keys:
        registry.find(ssn)
    for ssn in keys:
        registry.find(ssn)
    for ssn in keys[::2]:
        registry.erase(ssn)
    return time.perf_counter() - started


def main() -> None:
    keys = generate_keys("SSN", NUM_CITIZENS, Distribution.UNIFORM, seed=7)
    print(f"registry workload: {NUM_CITIZENS} SSNs, insert + 2x lookup + "
          "50% delete\n")

    contenders = {"STL (libstdc++ murmur)": stl_hash_bytes}
    for family in (HashFamily.NAIVE, HashFamily.OFFXOR, HashFamily.PEXT):
        synthesized = synthesize(r"\d{3}-\d{2}-\d{4}", family)
        contenders[f"SEPE {family.value}"] = synthesized.function

    stl_total = None
    for name, function in contenders.items():
        hash_seconds = measure_h_time(function, keys, repeats=3)
        total_seconds = run_workload(function, keys)
        collisions = total_collisions(function, keys)
        if stl_total is None:
            stl_total = total_seconds
        print(
            f"{name:24s} hash {hash_seconds * 1000:8.2f} ms   "
            f"workload {total_seconds * 1000:8.2f} ms "
            f"({stl_total / total_seconds:4.2f}x)   "
            f"collisions {collisions}"
        )

    print()
    pext = synthesize(r"\d{3}-\d{2}-\d{4}", HashFamily.PEXT)
    print("Pext is a bijection for SSNs: the paper's learned-index insight")
    print(f"  hash('123-45-6789') = {pext(b'123-45-6789'):#018x}")
    print(f"  hash('123-45-6790') = {pext(b'123-45-6790'):#018x}")


if __name__ == "__main__":
    main()

"""A URL route cache: constant prefixes, skip tables, variable tails.

Web backends hash URL keys millions of times; the paper's URL1/URL2
formats model exactly this (a constant site prefix plus a random
document token).  This example shows both synthesis paths:

1. fixed-length URL keys (URL1 format) — SEPE skips the 23-byte constant
   prefix entirely, loading only the token;
2. variable-length keys (the ``?name=...`` suffix of Example 3.7) — the
   generated function uses a skip table plus a per-byte tail loop
   (the paper's Figure 8).

Run:
    python examples/url_router.py
"""

from repro import HashFamily, synthesize, synthesize_from_keys
from repro.bench.runner import measure_h_time
from repro.containers import UnorderedMap
from repro.hashes import stl_hash_bytes
from repro.keygen import Distribution, generate_keys


def fixed_length_routing() -> None:
    print("== URL1: constant 23-byte prefix + [a-z0-9]{20}.html ==")
    keys = generate_keys("URL1", 10_000, Distribution.UNIFORM, seed=11)
    offxor = synthesize(
        r"https://www\.example\.com[a-z0-9]{20}\.html", HashFamily.OFFXOR
    )
    loads = [load.offset for load in offxor.plan.loads]
    print(f"key length 48; OffXor loads only offsets {loads} "
          "(prefix skipped)")
    stl_time = measure_h_time(stl_hash_bytes, keys, repeats=3)
    sepe_time = measure_h_time(offxor.function, keys, repeats=3)
    print(f"STL     {stl_time * 1000:8.2f} ms")
    print(f"OffXor  {sepe_time * 1000:8.2f} ms "
          f"({stl_time / sepe_time:.2f}x faster)\n")

    cache = UnorderedMap(offxor.function)
    for index, url in enumerate(keys[:100]):
        cache.insert(url, f"handler-{index}")
    print(f"route cache holds {len(cache)} routes, "
          f"{cache.bucket_collisions()} bucket collisions\n")


def variable_length_routing() -> None:
    print("== variable tail: https://ex.com/u?ssn=...&name=<anything> ==")
    examples = [
        "https://ex.com/u?ssn=123-45-6789&name=ada",
        "https://ex.com/u?ssn=987-65-4321&name=turing",
        "https://ex.com/u?ssn=000-11-2222&name=hopper-grace",
    ]
    hash_fn = synthesize_from_keys(examples, HashFamily.OFFXOR)
    table = hash_fn.plan.skip_table
    print(f"fixed body: {hash_fn.pattern.min_length} bytes; "
          f"skip table: initial={table.initial_offset}, skips={table.skips}")
    print("generated function (note the tail loop of Figure 8):")
    print(hash_fn.python_source)
    longer = b"https://ex.com/u?ssn=555-55-5555&name=someone-with-a-long-name"
    print(f"hashes variable-length keys fine: {hash_fn(longer):#x}")


def main() -> None:
    fixed_length_routing()
    variable_length_routing()


if __name__ == "__main__":
    main()

"""A multi-format service: one dispatcher, many specialized hashes.

A telemetry service keys its caches by whatever identifier arrives:
device MACs, client IPv4s, account SSNs, license plates.  Each format
gets a synthesized hash; the :class:`FormatDispatcher` routes by key
length (O(1) — SEPE formats are fixed-length) and falls back to the STL
baseline for anything unrecognized, exactly the layered design the
paper's Polymur example (Figure 2) hand-writes for lengths.

Run:
    python examples/multi_format_service.py
"""

from repro.bench.runner import measure_h_time
from repro.containers import UnorderedMap
from repro.core.dispatch import build_dispatcher
from repro.hashes import stl_hash_bytes
from repro.keygen import Distribution, generate_keys
from repro.keygen.keyspec import KEY_TYPES

FORMATS = ("SSN", "IPV4", "MAC", "IPV6")


def main() -> None:
    dispatcher = build_dispatcher(
        [KEY_TYPES[name].regex for name in FORMATS]
    )
    print("routing table:")
    for line in dispatcher.describe():
        print(f"  {line}")
    print()

    # A mixed stream: every format interleaved, plus some foreign keys.
    stream = []
    for name in FORMATS:
        stream += generate_keys(name, 2500, Distribution.UNIFORM, seed=17)
    stream += [f"user:{index}".encode() for index in range(500)]  # fallback

    cache = UnorderedMap(dispatcher)
    for index, key in enumerate(stream):
        cache.insert(key, index)
    print(f"cached {len(cache)} mixed-format entries, "
          f"{cache.bucket_collisions()} bucket collisions")

    hits = sum(1 for key in stream if cache.find(key) is not None)
    print(f"lookup hits: {hits}/{len(stream)}\n")

    dispatched = measure_h_time(dispatcher, stream, repeats=3)
    general = measure_h_time(stl_hash_bytes, stream, repeats=3)
    print(f"hashing the mixed stream ({len(stream)} keys):")
    print(f"  STL everywhere      {general * 1000:8.2f} ms")
    print(f"  dispatched SEPE     {dispatched * 1000:8.2f} ms "
          f"({general / dispatched:.2f}x)")


if __name__ == "__main__":
    main()

"""Learned-index style storage: bijective hashing, key-less tables,
and exact key recovery.

The paper grounds SEPE in Kraska et al.'s learned-index observation —
"the key itself can be used as an offset".  For formats with at most 64
varying bits, SEPE's Pext family *is* that offset function: an
invertible packing from key strings to integers.  This example walks
the full circle:

1. synthesize a bijective hash for license-plate-style keys;
2. validate the bijection claim empirically (repro.core.validate);
3. store records with NO key bytes at all (BijectiveMap);
4. recover the original keys from the stored 64-bit values
   (repro.core.inverse) — something no ordinary hash table can do.

Run:
    python examples/learned_index.py
"""

from repro import HashFamily, synthesize, validate
from repro.containers.bijective import BijectiveMap
from repro.core.inverse import invert_hash, invertible

PLATE_FORMAT = r"[A-Z]{3}-[0-9]{4}"  # e.g. "ABC-1234"


def main() -> None:
    plate_hash = synthesize(PLATE_FORMAT, HashFamily.PEXT)
    print(f"format: {PLATE_FORMAT}")
    print(f"variable bits: {plate_hash.pattern.variable_bit_count()}")
    print(f"bijective: {plate_hash.is_bijective}, "
          f"invertible: {invertible(plate_hash)}\n")

    report = validate(plate_hash, sample_size=3000)
    print("validation:")
    print(f"  collision rate {report.collision_rate:.6f}, "
          f"avalanche {report.avalanche:.3f}, ok={report.ok}\n")

    registry = BijectiveMap(plate_hash)
    fleet = {
        b"ABC-1234": "delivery van",
        b"XYZ-0001": "director's car",
        b"KJH-9876": "forklift",
    }
    for plate, vehicle in fleet.items():
        registry.insert(plate, vehicle)
    print(f"stored {len(registry)} vehicles with zero key bytes retained")
    print(f"lookup ABC-1234 -> {registry.find(b'ABC-1234')}\n")

    print("recovering the plates from the stored 64-bit values alone:")
    for value in sorted(registry.hashes()):
        plate = invert_hash(plate_hash, value)
        print(f"  {value:#018x} -> {plate.decode()} "
              f"({registry.find(plate)})")

    assert {invert_hash(plate_hash, v) for v in registry.hashes()} == set(
        fleet
    )
    print("\nround trip exact: every plate recovered bit-for-bit")


if __name__ == "__main__":
    main()
